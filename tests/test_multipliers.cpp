/// Tests for the Wallace reduction and the three multiplier
/// generators (radix-4 Booth, unsigned array, Baugh-Wooley signed).

#include <gtest/gtest.h>

#include "gen/array_mult.h"
#include "gen/booth.h"
#include "gen/wallace.h"
#include "harness.h"
#include "util/fixed_point.h"
#include "util/rng.h"

namespace adq::gen {
namespace {

TEST(Wallace, ReducesSumPreserving) {
  // Random bit matrix: the two output rows must sum to the same total.
  netlist::Netlist nl;
  util::Rng rng(5);
  BitMatrix m;
  std::vector<std::pair<int, netlist::NetId>> entries;  // (weight, net)
  int port = 0;
  for (int col = 0; col < 6; ++col) {
    const int height = 1 + (int)(rng.Word() % 5);
    for (int h = 0; h < height; ++h) {
      const netlist::NetId bit =
          nl.AddInputPort("i" + std::to_string(port++));
      AddBit(m, bit, col);
      entries.push_back({col, bit});
    }
  }
  TwoRows rows = ReduceToTwo(nl, m);
  test::OutWord(nl, "ra", rows.a);
  test::OutWord(nl, "rb", rows.b);

  sim::LogicSim sim(nl);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t expected = 0;
    for (const auto& [w, net] : entries) {
      const bool v = rng.Flip();
      sim.SetInput(net, v);
      if (v) expected += 1ULL << w;
    }
    sim.Settle();
    const std::uint64_t got = sim.ReadBus(nl.OutputBus("ra")) +
                              sim.ReadBus(nl.OutputBus("rb"));
    ASSERT_EQ(got, expected);
  }
}

TEST(Wallace, HeightTwoReachedLogarithmically) {
  netlist::Netlist nl;
  BitMatrix m;
  for (int h = 0; h < 64; ++h) AddBit(m, nl.AddInputPort("p" + std::to_string(h)), 0);
  EXPECT_EQ(MatrixHeight(m), 64);
  int stages = 0;
  while (MatrixHeight(m) > 2) {
    m = ReduceStage(nl, m);
    ++stages;
  }
  // 3:2 compression: ceil(log1.5(64/2)) ~ 9 stages max.
  EXPECT_LE(stages, 10);
}

struct MulCase {
  int wa;
  int wb;
};

class BoothTest : public ::testing::TestWithParam<MulCase> {};

TEST_P(BoothTest, MatchesSignedReference) {
  const auto [wa, wb] = GetParam();
  netlist::Netlist nl;
  const Word a = test::InWord(nl, "a", wa);
  const Word b = test::InWord(nl, "b", wb);
  test::OutWord(nl, "p", BoothMultiplySigned(nl, a, b));
  nl.Validate();
  sim::LogicSim sim(nl);
  util::Rng rng(wa * 100 + wb);
  const std::int64_t amin = -(1LL << (wa - 1)), amax = (1LL << (wa - 1)) - 1;
  const std::int64_t bmin = -(1LL << (wb - 1)), bmax = (1LL << (wb - 1)) - 1;
  // Corners plus random interior.
  std::vector<std::pair<std::int64_t, std::int64_t>> cases = {
      {0, 0},       {amin, bmin}, {amin, bmax}, {amax, bmin},
      {amax, bmax}, {-1, -1},     {1, -1},      {amin, -1}};
  for (int i = 0; i < 300; ++i)
    cases.push_back({rng.UniformInt(amin, amax), rng.UniformInt(bmin, bmax)});
  for (const auto& [av, bv] : cases) {
    sim.SetBus(nl.InputBus("a"), util::FromSigned(av, wa));
    sim.SetBus(nl.InputBus("b"), util::FromSigned(bv, wb));
    sim.Settle();
    ASSERT_EQ(util::ToSigned(sim.ReadBus(nl.OutputBus("p")), wa + wb),
              av * bv)
        << av << " * " << bv << " (w " << wa << "x" << wb << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BoothTest,
                         ::testing::Values(MulCase{4, 4}, MulCase{5, 4},
                                           MulCase{8, 8}, MulCase{7, 6},
                                           MulCase{16, 16},
                                           MulCase{17, 16}));

TEST(Booth, RejectsOddMultiplierWidth) {
  netlist::Netlist nl;
  const Word a = test::InWord(nl, "a", 8);
  const Word b = test::InWord(nl, "b", 7);
  EXPECT_THROW(BoothMultiplySigned(nl, a, b), CheckError);
}

class ArrayMulTest : public ::testing::TestWithParam<MulCase> {};

TEST_P(ArrayMulTest, UnsignedMatchesReference) {
  const auto [wa, wb] = GetParam();
  netlist::Netlist nl;
  const Word a = test::InWord(nl, "a", wa);
  const Word b = test::InWord(nl, "b", wb);
  test::OutWord(nl, "p", ArrayMultiplyUnsigned(nl, a, b));
  sim::LogicSim sim(nl);
  util::Rng rng(3 * wa + wb);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t av = rng.Word() & ((1ULL << wa) - 1);
    const std::uint64_t bv = rng.Word() & ((1ULL << wb) - 1);
    sim.SetBus(nl.InputBus("a"), av);
    sim.SetBus(nl.InputBus("b"), bv);
    sim.Settle();
    ASSERT_EQ(sim.ReadBus(nl.OutputBus("p")), av * bv);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ArrayMulTest,
                         ::testing::Values(MulCase{4, 4}, MulCase{8, 6},
                                           MulCase{12, 12}));

TEST(BaughWooley, SignedMatchesReferenceExhaustive4Bit) {
  netlist::Netlist nl;
  const Word a = test::InWord(nl, "a", 4);
  const Word b = test::InWord(nl, "b", 4);
  test::OutWord(nl, "p", BaughWooleyMultiplySigned(nl, a, b));
  sim::LogicSim sim(nl);
  for (std::int64_t av = -8; av <= 7; ++av) {
    for (std::int64_t bv = -8; bv <= 7; ++bv) {
      sim.SetBus(nl.InputBus("a"), util::FromSigned(av, 4));
      sim.SetBus(nl.InputBus("b"), util::FromSigned(bv, 4));
      sim.Settle();
      ASSERT_EQ(util::ToSigned(sim.ReadBus(nl.OutputBus("p")), 8), av * bv)
          << av << " * " << bv;
    }
  }
}

TEST(BaughWooley, Random16Bit) {
  netlist::Netlist nl;
  const Word a = test::InWord(nl, "a", 16);
  const Word b = test::InWord(nl, "b", 16);
  test::OutWord(nl, "p", BaughWooleyMultiplySigned(nl, a, b));
  sim::LogicSim sim(nl);
  util::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t av = rng.UniformInt(-32768, 32767);
    const std::int64_t bv = rng.UniformInt(-32768, 32767);
    sim.SetBus(nl.InputBus("a"), util::FromSigned(av, 16));
    sim.SetBus(nl.InputBus("b"), util::FromSigned(bv, 16));
    sim.Settle();
    ASSERT_EQ(util::ToSigned(sim.ReadBus(nl.OutputBus("p")), 32), av * bv);
  }
}

TEST(Multipliers, BoothSmallerThanArrayAtSameWidth) {
  // Radix-4 halves the partial-product count; at 16x16 the Booth
  // netlist should not be larger than the Baugh-Wooley array.
  netlist::Netlist nl_booth, nl_bw;
  {
    const Word a = test::InWord(nl_booth, "a", 16);
    const Word b = test::InWord(nl_booth, "b", 16);
    test::OutWord(nl_booth, "p", BoothMultiplySigned(nl_booth, a, b));
  }
  {
    const Word a = test::InWord(nl_bw, "a", 16);
    const Word b = test::InWord(nl_bw, "b", 16);
    test::OutWord(nl_bw, "p", BaughWooleyMultiplySigned(nl_bw, a, b));
  }
  EXPECT_LT(nl_booth.num_instances(), nl_bw.num_instances() * 1.2);
}

}  // namespace
}  // namespace adq::gen
