/// Tests for the adq_lint static analyzer (src/lint): rule registry
/// consistency, the generator-cleanliness property (every shipped
/// operator generator produces a lint-error-free netlist across
/// widths 4..32), one deliberately broken fixture per rule, flow-gate
/// integration, obs metric mirroring, JSON report well-formedness
/// (validated with a recursive-descent parse), and regression tests
/// for the post-ECO tile-protrusion defect the flow lint gate caught
/// in place::RelegalizeViolations.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/flow.h"
#include "gen/adders.h"
#include "gen/operator.h"
#include "lint/lint.h"
#include "netlist/netlist.h"
#include "obs/obs.h"
#include "place/grid_partition.h"
#include "tech/cell_library.h"
#include "util/check.h"

namespace adq::lint {
namespace {

using netlist::InstId;
using netlist::NetId;
using netlist::Netlist;
using netlist::PinRef;
using netlist::RawAccess;
using tech::CellKind;
using tech::DriveStrength;

// ---------------------------------------------------------------
// Minimal JSON well-formedness checker (validates, does not build a
// DOM). Same grammar subset as the obs serializer tests.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return Expect('"');
  }
  bool Number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+'))
      ++pos_;
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) { return Peek(c); }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

int CountRule(const LintReport& rep, const char* id) {
  int n = 0;
  for (const Diagnostic& d : rep.diagnostics)
    if (d.rule == id) ++n;
  return n;
}

// ---------------------------------------------------------------
// Rule registry

TEST(LintRules, RegistryIsConsistent) {
  const std::vector<RuleInfo>& rules = AllRules();
  ASSERT_GE(rules.size(), 14u);
  std::set<std::string> ids, names;
  for (const RuleInfo& r : rules) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate id " << r.id;
    EXPECT_TRUE(names.insert(r.name).second) << "duplicate name " << r.name;
    EXPECT_NE(r.description[0], '\0');
    EXPECT_EQ(FindRule(r.id), &r);
    EXPECT_EQ(FindRule(r.name), &r);
  }
  EXPECT_EQ(FindRule("NOPE"), nullptr);
  // Severity defaults are API: dead logic exists in shipped operators
  // (AddSigned drops the adder's carry cells), so NL003/NL006 must
  // stay warnings while structural corruption stays an error.
  EXPECT_EQ(FindRule(kRuleMultiDriver)->severity, Severity::kError);
  EXPECT_EQ(FindRule(kRuleCombLoop)->severity, Severity::kError);
  EXPECT_EQ(FindRule(kRuleDanglingOutput)->severity, Severity::kWarning);
  EXPECT_EQ(FindRule(kRuleDeadCone)->severity, Severity::kWarning);
  EXPECT_EQ(FindRule(kRuleFanoutCeiling)->severity, Severity::kWarning);
}

// ---------------------------------------------------------------
// Property: every shipped generator is lint-clean (zero errors; the
// known dead carry cones surface as warnings only) across widths.

TEST(LintClean, OperatorsAcrossWidths) {
  for (const int w : {4, 8, 12, 16, 24, 32}) {
    const gen::Operator ops[] = {
        gen::BuildBoothOperator(w), gen::BuildButterflyOperator(w),
        gen::BuildFirMacOperator(w), gen::BuildMacOperator(w),
        gen::BuildArrayMultOperator(w)};
    for (const gen::Operator& op : ops) {
      const LintReport rep = LintNetlist(op.nl);
      EXPECT_EQ(rep.errors(), 0)
          << op.spec.name << " width " << w << ":\n" << rep.Render();
    }
  }
}

TEST(LintClean, AddersAcrossWidthsViaRegisterHarness) {
  for (const gen::AdderStyle style :
       {gen::AdderStyle::kRipple, gen::AdderStyle::kCla,
        gen::AdderStyle::kKoggeStone}) {
    for (int w = 4; w <= 32; w += 4) {
      Netlist nl("adder_harness");
      const gen::Word a = gen::RegisteredInputBus(nl, "a", w);
      const gen::Word b = gen::RegisteredInputBus(nl, "b", w);
      const gen::AdderResult r =
          gen::MakeAdder(nl, a, b, nl.ConstNet(false), style);
      gen::Word sum = r.sum;
      sum.push_back(r.carry);
      gen::RegisteredOutputBus(nl, "s", sum);
      const LintReport rep = LintNetlist(nl);
      EXPECT_EQ(rep.errors(), 0)
          << "style " << static_cast<int>(style) << " width " << w << ":\n"
          << rep.Render();
      // The harness registers the carry too, so nothing is dead.
      EXPECT_EQ(CountRule(rep, kRuleDeadCone), 0);
    }
  }
}

TEST(LintClean, RegisteredOperatorPassesEndpointDiscipline) {
  const gen::Operator op = gen::BuildBoothOperator(8);
  const tech::CellLibrary lib;
  FlowArtifacts art;
  art.clock_ns = op.spec.target_clock_ns;
  const LintReport rep = LintFlow(op.nl, lib, art);
  EXPECT_EQ(CountRule(rep, kRuleEndpointConstraint), 0) << rep.Render();
}

// ---------------------------------------------------------------
// One deliberately broken fixture per rule.

TEST(LintFixtures, NL001MultiDriverNet) {
  Netlist nl("fx");
  const NetId in = nl.AddInputPort("i");
  const NetId x = nl.AddGate(CellKind::kInv, {in});
  nl.AddGate(CellKind::kInv, {x});  // reader so x is not dangling
  const NetId y = nl.AddGate(CellKind::kBuf, {in});
  nl.AddOutputPort("o", y);
  // Second driver claims net x.
  RawAccess raw(nl);
  raw.inst(InstId(2)).out[0] = x;
  const LintReport rep = LintNetlist(nl);
  EXPECT_GE(CountRule(rep, kRuleMultiDriver), 1) << rep.Render();
  EXPECT_GT(rep.errors(), 0);
}

TEST(LintFixtures, NL001DrivenPrimaryInput) {
  Netlist nl("fx");
  const NetId in = nl.AddInputPort("i");
  const NetId x = nl.AddGate(CellKind::kInv, {in});
  nl.AddOutputPort("o", x);
  RawAccess raw(nl);
  raw.inst(InstId(0)).out[0] = in;  // INV now also drives the port net
  const LintReport rep = LintNetlist(nl);
  EXPECT_GE(CountRule(rep, kRuleMultiDriver), 1) << rep.Render();
}

TEST(LintFixtures, NL002UndrivenNet) {
  Netlist nl("fx");
  const NetId floating = nl.NewNet();  // never driven
  const NetId x = nl.AddGate(CellKind::kInv, {floating});
  nl.AddOutputPort("o", x);
  const LintReport rep = LintNetlist(nl);
  EXPECT_EQ(CountRule(rep, kRuleUndrivenNet), 1) << rep.Render();
  EXPECT_FALSE(rep.clean());
}

TEST(LintFixtures, NL003DanglingOutput) {
  Netlist nl("fx");
  const NetId in = nl.AddInputPort("i");
  nl.AddGate(CellKind::kInv, {in});  // output read by nobody, not a PO
  const LintReport rep = LintNetlist(nl);
  EXPECT_EQ(CountRule(rep, kRuleDanglingOutput), 1) << rep.Render();
  // Dangling output is a warning: the netlist stays analyzable.
  EXPECT_EQ(rep.errors(), 0);
}

TEST(LintFixtures, NL004CombinationalLoopWithCyclePrinted) {
  Netlist nl("fx");
  const NetId loop = nl.NewNet();
  const NetId mid = nl.AddGate(CellKind::kInv, {loop});
  nl.AddCellWithOutputs(CellKind::kInv, DriveStrength::kX1, {mid}, {loop});
  nl.AddOutputPort("o", mid);
  const LintReport rep = LintNetlist(nl);
  ASSERT_GE(CountRule(rep, kRuleCombLoop), 1) << rep.Render();
  // The finding names the cycle itself, INV#a -> INV#b -> INV#a.
  bool printed = false;
  for (const Diagnostic& d : rep.diagnostics)
    if (d.rule == kRuleCombLoop &&
        d.message.find("INV#0 -> INV#1 -> INV#0") != std::string::npos)
      printed = true;
  EXPECT_TRUE(printed) << rep.Render();
}

TEST(LintFixtures, NL004RegisterCutsTheLoop) {
  // Same topology but with a DFF in the cycle: a legal accumulator.
  Netlist nl("fx");
  const NetId q = nl.NewNet();
  const NetId d = nl.AddGate(CellKind::kInv, {q});
  nl.AddCellWithOutputs(CellKind::kDff, DriveStrength::kX1, {d}, {q});
  nl.AddOutputPort("o", d);
  const LintReport rep = LintNetlist(nl);
  EXPECT_EQ(CountRule(rep, kRuleCombLoop), 0) << rep.Render();
}

TEST(LintFixtures, NL005PinArityAndStaleBackrefs) {
  Netlist nl("fx");
  const NetId in = nl.AddInputPort("i");
  const NetId x = nl.AddGate(CellKind::kInv, {in});
  nl.AddOutputPort("o", x);
  RawAccess raw(nl);
  // Extra pin beyond the INV's 1-input definition.
  raw.inst(InstId(0)).in[1] = in;
  const LintReport extra = LintNetlist(nl);
  EXPECT_GE(CountRule(extra, kRulePinArity), 1) << extra.Render();
  raw.inst(InstId(0)).in[1] = NetId();
  // Stale sink back-reference: the net forgets its reader.
  raw.net(in).sinks.clear();
  const LintReport stale = LintNetlist(nl);
  EXPECT_GE(CountRule(stale, kRulePinArity), 1) << stale.Render();
}

TEST(LintFixtures, NL006DeadCone) {
  Netlist nl("fx");
  const NetId in = nl.AddInputPort("i");
  const NetId x = nl.AddGate(CellKind::kInv, {in});
  const NetId live = nl.AddGate(CellKind::kBuf, {in});
  nl.AddGate(CellKind::kInv, {x});  // dead pair: reaches no output
  nl.AddOutputPort("o", live);
  const LintReport rep = LintNetlist(nl);
  EXPECT_EQ(CountRule(rep, kRuleDeadCone), 2) << rep.Render();
  EXPECT_EQ(rep.errors(), 0);  // dead logic is a warning
}

TEST(LintFixtures, NL007FanoutCeiling) {
  Netlist nl("fx");
  const NetId in = nl.AddInputPort("i");
  const NetId x = nl.AddGate(CellKind::kBuf, {in});
  for (int k = 0; k < 9; ++k)
    nl.AddOutputPort("o" + std::to_string(k),
                     nl.AddGate(CellKind::kInv, {x}));
  LintOptions opt;
  opt.max_fanout = 8;
  const LintReport rep = LintNetlist(nl, opt);
  EXPECT_EQ(CountRule(rep, kRuleFanoutCeiling), 1) << rep.Render();
  // Without a ceiling the rule does not run.
  const LintReport off = LintNetlist(nl);
  EXPECT_EQ(CountRule(off, kRuleFanoutCeiling), 0);
}

TEST(LintFixtures, NL008BusBookkeeping) {
  Netlist nl("fx");
  const NetId a0 = nl.AddInputPort("a0");
  const NetId a1 = nl.AddInputPort("a1");
  nl.AddInputBus("a", {a0, a1});
  nl.AddOutputPort("o", nl.AddGate(CellKind::kAnd2, {a0, a1}));
  RawAccess raw(nl);
  // Duplicate bus name + a bit that is no longer flagged as a port.
  raw.input_buses().push_back(raw.input_buses()[0]);
  raw.net(a1).is_primary_input = false;
  const LintReport rep = LintNetlist(nl);
  EXPECT_GE(CountRule(rep, kRulePortBus), 2) << rep.Render();
  EXPECT_FALSE(rep.clean());
}

// Flow-artifact fixtures share one small implemented design.
struct FlowFixture {
  tech::CellLibrary lib;
  core::ImplementedDesign d;
  FlowFixture() {
    core::FlowOptions fopt;
    fopt.grid = place::GridConfig{2, 2};
    d = core::RunImplementationFlow(gen::BuildMacOperator(4), lib, fopt);
  }
};

FlowFixture& SharedFlow() {
  static FlowFixture* fx = new FlowFixture;
  return *fx;
}

TEST(LintFixtures, FlowArtifactsAreCleanByConstruction) {
  FlowFixture& fx = SharedFlow();
  FlowArtifacts art;
  art.placement = &fx.d.placement;
  art.partition = &fx.d.partition;
  art.clock_ns = fx.d.clock_ns;
  const LintReport rep = LintFlow(fx.d.op.nl, fx.lib, art);
  EXPECT_EQ(rep.errors(), 0) << rep.Render();
}

TEST(LintFixtures, FL001DomainCoverage) {
  FlowFixture& fx = SharedFlow();
  place::GridPartition part = fx.d.partition;
  part.domain_of[0] = 99;  // nonexistent domain
  part.domain_of[1] = -1;
  FlowArtifacts art;
  art.partition = &part;
  const LintReport rep = LintFlow(fx.d.op.nl, fx.lib, art);
  EXPECT_GE(CountRule(rep, kRuleDomainCoverage), 2) << rep.Render();

  part = fx.d.partition;
  part.domain_of.pop_back();  // a placed cell with no domain at all
  const LintReport uncovered = LintFlow(fx.d.op.nl, fx.lib, art);
  EXPECT_GE(CountRule(uncovered, kRuleDomainCoverage), 1)
      << uncovered.Render();
}

TEST(LintFixtures, FL002TileContainment) {
  FlowFixture& fx = SharedFlow();
  place::Placement pl = fx.d.placement;
  // Push one cell deep into the guardband between column tiles.
  pl.pos[0] = place::Point{-5.0, pl.pos[0].y};
  FlowArtifacts art;
  art.placement = &pl;
  art.partition = &fx.d.partition;
  const LintReport rep = LintFlow(fx.d.op.nl, fx.lib, art);
  EXPECT_GE(CountRule(rep, kRuleTileContainment), 1) << rep.Render();
}

TEST(LintFixtures, FL003GuardbandOverlap) {
  FlowFixture& fx = SharedFlow();
  place::GridPartition part = fx.d.partition;
  // Slide tile 1 left until it violates the guardband against tile 0.
  part.tiles[1].x_lo = part.tiles[0].x_hi + 0.1 * part.guardband_um;
  FlowArtifacts art;
  art.partition = &part;
  const LintReport gap = LintFlow(fx.d.op.nl, fx.lib, art);
  EXPECT_GE(CountRule(gap, kRuleGuardbandOverlap), 1) << gap.Render();
  // Slide it further until the wells overlap outright.
  part.tiles[1].x_lo = part.tiles[0].x_hi - 1.0;
  const LintReport overlap = LintFlow(fx.d.op.nl, fx.lib, art);
  EXPECT_GE(CountRule(overlap, kRuleGuardbandOverlap), 1)
      << overlap.Render();
}

TEST(LintFixtures, FL004MaskWidthAndST001Endpoints) {
  // Mode masks referencing domains beyond the count, and a domain
  // biased forward and reverse at once.
  const std::vector<ModeEntry> modes = {
      {8, 0.9, 0b100u, 0u, 1e-3},   // domain 2 of 2
      {16, 1.0, 0b01u, 0b01u, 2e-3},  // fbb & rbb overlap
  };
  const LintReport rep = LintModeTable("fx", modes, /*num_domains=*/2,
                                       /*data_width=*/16);
  EXPECT_GE(CountRule(rep, kRuleMaskWidth), 2) << rep.Render();

  // ST001: a port-to-port path no constraint covers.
  Netlist nl("fx");
  const NetId in = nl.AddInputPort("i");
  nl.AddOutputPort("o", nl.AddGate(CellKind::kInv, {in}));
  tech::CellLibrary lib;
  FlowArtifacts art;
  art.clock_ns = 1.0;
  const LintReport st = LintFlow(nl, lib, art);
  EXPECT_GE(CountRule(st, kRuleEndpointConstraint), 2) << st.Render();
}

TEST(LintFixtures, MD001ModeSchedule) {
  const std::vector<ModeEntry> modes = {
      {4, 0.7, 0u, 0u, 3e-3},   // more power than the 8-bit mode below
      {8, 0.8, 0u, 0u, 1e-3},   // -> monotonicity warning
      {8, 0.8, 0u, 0u, 1e-3},   // duplicate bitwidth -> error
      {99, 0.8, 0u, 0u, 2e-3},  // bitwidth beyond data width -> error
      {12, 9.9, 0u, 0u, 2e-3},  // absurd VDD -> warning
  };
  const LintReport rep =
      LintModeTable("fx", modes, /*num_domains=*/4, /*data_width=*/16);
  EXPECT_GE(CountRule(rep, kRuleModeSchedule), 4) << rep.Render();
  EXPECT_GT(rep.errors(), 0);
  EXPECT_GT(rep.warnings(), 0);
}

// ---------------------------------------------------------------
// Options, gates, report plumbing

TEST(LintOptions, DisabledRulesAreSkipped) {
  Netlist nl("fx");
  const NetId in = nl.AddInputPort("i");
  nl.AddGate(CellKind::kInv, {in});  // dangling + dead
  LintOptions opt;
  opt.disabled = {kRuleDanglingOutput, "dead-cone"};  // id and name forms
  const LintReport rep = LintNetlist(nl, opt);
  EXPECT_EQ(CountRule(rep, kRuleDanglingOutput), 0) << rep.Render();
  EXPECT_EQ(CountRule(rep, kRuleDeadCone), 0) << rep.Render();
}

TEST(LintOptions, PerRuleCapFoldsIntoSummary) {
  Netlist nl("fx");
  const NetId in = nl.AddInputPort("i");
  for (int k = 0; k < 40; ++k) nl.AddGate(CellKind::kInv, {in});
  LintOptions opt;
  opt.max_diags_per_rule = 4;
  const LintReport rep = LintNetlist(nl, opt);
  // 4 detailed findings + 1 trailing summary per affected rule.
  EXPECT_EQ(CountRule(rep, kRuleDanglingOutput), 5) << rep.Render();
  bool summarized = false;
  for (const Diagnostic& d : rep.diagnostics)
    if (d.location == "(summary)" &&
        d.message.find("36 further") != std::string::npos)
      summarized = true;
  EXPECT_TRUE(summarized) << rep.Render();
}

TEST(LintGates, EnforceGateSemantics) {
  LintReport rep;
  rep.subject = "fx";
  EXPECT_NO_THROW(EnforceGate(rep, LintGate::kError));
  rep.Add(Diagnostic{kRuleDeadCone, Severity::kWarning, "x", "m", ""});
  EXPECT_NO_THROW(EnforceGate(rep, LintGate::kError));  // warnings pass
  rep.Add(Diagnostic{kRuleMultiDriver, Severity::kError, "x", "m", ""});
  EXPECT_THROW(EnforceGate(rep, LintGate::kError), CheckError);
  EXPECT_NO_THROW(EnforceGate(rep, LintGate::kWarn));
  EXPECT_NO_THROW(EnforceGate(rep, LintGate::kOff));
}

TEST(LintReportTest, JsonIsWellFormedAndComplete) {
  Netlist nl("fx\"quoted");  // exercises string escaping
  const NetId in = nl.AddInputPort("i");
  nl.AddGate(CellKind::kInv, {in});
  LintReport rep = LintNetlist(nl);
  FlowArtifacts art;
  art.clock_ns = -1.0;  // force an ST001 error into the merged report
  tech::CellLibrary lib;
  rep.Merge(LintFlow(nl, lib, art));
  const std::string json = rep.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"subject\":\"fx\\\"quoted\""), std::string::npos);
  EXPECT_NE(json.find("\"diagnostics\":["), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"NL003\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":"), std::string::npos);
  // Render() ends with the summary line.
  const std::string text = rep.Render();
  EXPECT_NE(text.find("error(s)"), std::string::npos);
  EXPECT_NE(text.find("[NL003]"), std::string::npos);
}

TEST(LintMetrics, TotalsMirroredIntoObsCounters) {
#ifndef ADQ_OBS_DISABLED
  obs::EnableMetrics(true);
  obs::Counter& reports = obs::GetCounter("lint.reports");
  obs::Counter& errors = obs::GetCounter("lint.errors");
  obs::Counter& warnings = obs::GetCounter("lint.warnings");
  const long r0 = reports.value(), e0 = errors.value(),
             w0 = warnings.value();
  Netlist nl("fx");
  const NetId floating = nl.NewNet();
  const NetId x = nl.AddGate(CellKind::kInv, {floating});  // NL002 error
  nl.AddOutputPort("o", x);
  const LintReport rep = LintNetlist(nl);
  EXPECT_EQ(reports.value(), r0 + 1);
  EXPECT_EQ(errors.value(), e0 + rep.errors());
  EXPECT_EQ(warnings.value(), w0 + rep.warnings());
  EXPECT_GT(rep.errors(), 0);
#else
  GTEST_SKIP() << "obs compiled out";
#endif
}

// ---------------------------------------------------------------
// Flow integration: the on-by-default gates, and the runtime
// controller's schedule check.

TEST(LintFlowGate, DefaultFlowPassesErrorGate) {
  // Would throw CheckError from a lint gate if any error were found.
  FlowFixture& fx = SharedFlow();
  EXPECT_TRUE(fx.d.placement.pos.size() == fx.d.op.nl.num_instances());
}

TEST(LintFlowGate, ControllerScheduleIsClean) {
  FlowFixture& fx = SharedFlow();
  core::ExploreOptions xopt;
  xopt.bitwidths = {2, 4};
  const core::ExplorationResult res =
      core::ExploreDesignSpace(fx.d, fx.lib, xopt);
  const core::RuntimeController ctl(res);
  const LintReport rep =
      ctl.Lint(fx.d.num_domains(), fx.d.op.spec.data_width);
  EXPECT_EQ(rep.errors(), 0) << rep.Render();
}

// ---------------------------------------------------------------
// Regression: post-ECO upsizing used to push boundary cells out of
// their domain tile (FL002) and could overflow a tile's row capacity
// outright. RelegalizeViolations repairs both.

TEST(LintRegression, RelegalizeRepairsUpsizedBoundaryCells) {
  FlowFixture& fx = SharedFlow();
  gen::Operator op = fx.d.op;  // copy: sized netlist
  place::GridPartition part = fx.d.partition;
  place::Placement pl = fx.d.placement;
  // Upsizing one domain's cells after legalization models an
  // aggressive localized ECO: boundary cells protrude into the
  // guardband, and the tile overflows its row capacity so the
  // shedding escape must move cells into the (still slack)
  // neighboring tiles.
  for (std::uint32_t i = 0; i < op.nl.num_instances(); ++i)
    if (part.domain_of[i] == 0) op.nl.SetDrive(InstId(i), DriveStrength::kX4);
  FlowArtifacts art;
  art.placement = &pl;
  art.partition = &part;
  const LintReport before = LintFlow(op.nl, fx.lib, art);
  ASSERT_GT(CountRule(before, kRuleTileContainment), 0)
      << "fixture no longer provokes the defect:\n" << before.Render();
  const int fixed =
      place::RelegalizeViolations(op.nl, fx.lib, &part, &pl);
  EXPECT_GT(fixed, 0);
  const LintReport after = LintFlow(op.nl, fx.lib, art);
  EXPECT_EQ(CountRule(after, kRuleTileContainment), 0) << after.Render();
  EXPECT_EQ(CountRule(after, kRuleDomainCoverage), 0) << after.Render();
}

TEST(LintRegression, FlowSurvivesCapacityOverflowConfig) {
  // butterfly/8 on a 4x3 grid is the configuration whose post-ECO
  // upsizing overflowed a tile's row capacity before the shedding
  // escape existed; with lint gates on (the default) this used to
  // abort. It must now implement cleanly.
  tech::CellLibrary lib;
  core::FlowOptions fopt;
  fopt.grid = place::GridConfig{4, 3};
  const core::ImplementedDesign d =
      core::RunImplementationFlow(gen::BuildButterflyOperator(8), lib, fopt);
  FlowArtifacts art;
  art.placement = &d.placement;
  art.partition = &d.partition;
  art.clock_ns = d.clock_ns;
  const LintReport rep = LintFlow(d.op.nl, lib, art);
  EXPECT_EQ(rep.errors(), 0) << rep.Render();
}

}  // namespace
}  // namespace adq::lint
