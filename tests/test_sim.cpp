/// Tests for the logic simulator, stimulus generators, activity
/// extraction and the VCD writer.

#include <gtest/gtest.h>

#include <sstream>

#include "gen/operator.h"
#include "harness.h"
#include "sim/activity.h"
#include "sim/stimulus.h"
#include "sim/vcd.h"
#include "util/fixed_point.h"

namespace adq::sim {
namespace {

using tech::CellKind;

TEST(LogicSim, SettleEvaluatesCombinational) {
  netlist::Netlist nl;
  const auto a = nl.AddInputPort("a");
  const auto b = nl.AddInputPort("b");
  const auto y = nl.AddGate(CellKind::kXor2, {a, b});
  nl.AddOutputPort("y", y);
  LogicSim sim(nl);
  sim.SetInput(a, true);
  sim.SetInput(b, false);
  sim.Settle();
  EXPECT_TRUE(sim.Value(y));
  sim.SetInput(b, true);
  sim.Settle();
  EXPECT_FALSE(sim.Value(y));
}

TEST(LogicSim, RegistersHoldState) {
  netlist::Netlist nl;
  const auto d = nl.AddInputPort("d");
  const auto q = nl.AddGate(CellKind::kDff, {d});
  nl.AddOutputPort("q", q);
  LogicSim sim(nl);
  sim.Reset();
  sim.SetInput(d, true);
  sim.Settle();
  EXPECT_FALSE(sim.Value(q)) << "Q must not change before the edge";
  sim.Tick();
  EXPECT_TRUE(sim.Value(q));
  sim.SetInput(d, false);
  sim.Tick();
  EXPECT_FALSE(sim.Value(q));
}

TEST(LogicSim, TogglesCounted) {
  netlist::Netlist nl;
  const auto d = nl.AddInputPort("d");
  const auto q = nl.AddGate(CellKind::kDff, {d});
  nl.AddOutputPort("q", q);
  LogicSim sim(nl);
  sim.Reset();
  // Alternate d: q toggles every cycle after the first.
  for (int t = 0; t < 10; ++t) {
    sim.SetInput(d, t % 2 == 0);
    sim.Tick();
  }
  // 9 comparisons between consecutive post-edge states, all differ.
  EXPECT_EQ(sim.toggles()[q.index()], 9u);
  EXPECT_EQ(sim.cycles(), 9u);
}

TEST(LogicSim, ResetClearsStateAndStats) {
  netlist::Netlist nl;
  const auto d = nl.AddInputPort("d");
  const auto q = nl.AddGate(CellKind::kDff, {d});
  nl.AddOutputPort("q", q);
  LogicSim sim(nl);
  sim.SetInput(d, true);
  sim.Tick();
  sim.Tick();
  sim.Reset();
  EXPECT_FALSE(sim.Value(q));
  EXPECT_EQ(sim.cycles(), 0u);
  EXPECT_EQ(sim.toggles()[q.index()], 0u);
}

TEST(Stimulus, UniformStreamBounded) {
  util::Rng rng(1);
  const auto s = UniformStream(rng, 12, 500);
  ASSERT_EQ(s.size(), 500u);
  for (const auto v : s) EXPECT_LT(v, 1u << 12);
}

TEST(Stimulus, CorrelatedStreamBoundedAndCorrelated) {
  util::Rng rng(2);
  const auto s = CorrelatedStream(rng, 16, 4000, 0.95);
  double prev = 0.0, corr_acc = 0.0, power = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double v = (double)util::ToSigned(s[i], 16);
    EXPECT_LE(std::abs(v), 32767.0);
    if (i > 0) corr_acc += v * prev;
    power += v * v;
    prev = v;
  }
  // Empirical lag-1 autocorrelation must be clearly positive.
  EXPECT_GT(corr_acc / power, 0.7);
}

TEST(Stimulus, CorrelatedStreamSupportsFullWidthRange) {
  // Satellite contract: CorrelatedStream accepts every width
  // UniformStream does (1..64) instead of CHECK-failing at the edges.
  for (const int width : {1, 2, 62, 63, 64}) {
    util::Rng rng(7);
    const auto s = CorrelatedStream(rng, width, 600);
    ASSERT_EQ(s.size(), 600u);
    bool any_pos = false, any_neg = false;
    for (const auto v : s) {
      if (width < 64) {
        EXPECT_LT(v, 1ULL << width);
      }
      const std::int64_t sv = util::ToSigned(v, width);
      any_pos = any_pos || sv > 0;
      any_neg = any_neg || sv < 0;
    }
    EXPECT_TRUE(any_neg) << "width " << width << " never goes negative";
    if (width > 1) {
      EXPECT_TRUE(any_pos) << "width " << width << " never goes positive";
    }
  }
}

TEST(Stimulus, CorrelatedStreamWidthOneIsCorrelatedSignBit) {
  util::Rng rng(9);
  const auto s = CorrelatedStream(rng, 1, 4000, 0.95);
  int flips = 0;
  for (std::size_t i = 1; i < s.size(); ++i)
    if (s[i] != s[i - 1]) ++flips;
  // A rho=0.95 sign process flips far less often than a fair coin.
  EXPECT_GT(flips, 0);
  EXPECT_LT(flips, 1000);
}

TEST(Stimulus, CorrelatedStreamNarrowWidthsUnchanged) {
  // The widened contract must not disturb existing streams: width 16
  // keeps its exact historical full-scale constant, so the first few
  // samples stay pinned by determinism of the Rng.
  util::Rng a(2), b(2);
  const auto s1 = CorrelatedStream(a, 16, 100, 0.95);
  const auto s2 = CorrelatedStream(b, 16, 100, 0.95);
  EXPECT_EQ(s1, s2);
}

TEST(Stimulus, MaskStreamZeroesLsbs) {
  util::Rng rng(3);
  auto s = UniformStream(rng, 16, 100);
  MaskStream(s, 16, 6);
  for (const auto v : s) EXPECT_EQ(v & 0x3F, 0u);
}

TEST(Activity, RatesAreInUnitRange) {
  const gen::Operator op = gen::BuildBoothOperator(8);
  const ActivityProfile prof = ExtractActivity(op, 0, 256, 11);
  ASSERT_EQ(prof.toggle_rate.size(), op.nl.num_nets());
  for (const double r : prof.toggle_rate) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(Activity, ZeroedLsbsReduceActivity) {
  const gen::Operator op = gen::BuildBoothOperator(16);
  const ActivityProfile full = ExtractActivity(op, 0, 512, 11);
  const ActivityProfile half = ExtractActivity(op, 8, 512, 11);
  const ActivityProfile none = ExtractActivity(op, 16, 512, 11);
  auto total = [](const ActivityProfile& p) {
    double t = 0.0;
    for (const double r : p.toggle_rate) t += r;
    return t;
  };
  EXPECT_LT(total(half), total(full));
  EXPECT_LT(total(none), 1e-9) << "all-zero inputs must be toggle-free";
}

TEST(Activity, TooFewCyclesRejected) {
  // cycles == 1 only establishes the toggle baseline (cycles() == 0),
  // which used to silently produce an all-zero profile and 0 W of
  // dynamic power; now it is a contract violation.
  const gen::Operator op = gen::BuildBoothOperator(8);
  EXPECT_THROW(ExtractActivity(op, 0, 1, 11), CheckError);
  EXPECT_THROW(ExtractActivity(op, 0, 0, 11), CheckError);
  EXPECT_THROW(ExtractActivityScalar(op, 0, 1, 11), CheckError);
  const ActivityProfile two = ExtractActivity(op, 0, 2, 11);
  EXPECT_EQ(two.cycles, 1u);
}

TEST(Activity, ClearCadenceFollowsOperatorSpec) {
  // The clr pulse period is the operator's declared accumulation
  // frame (ceil(30/4) = 8 for the folded FIR), not a hard-coded 15.
  const gen::Operator fir = gen::BuildFirMacOperator(8);
  EXPECT_EQ(fir.spec.accumulation_cycles,
            (gen::kFirTaps + gen::kFirMacsPerCycle - 1) /
                gen::kFirMacsPerCycle);
  const gen::Operator mac = gen::BuildMacOperator(8);
  EXPECT_GT(mac.spec.accumulation_cycles, 0);
  // An operator with a clr bus but no declared frame length is a
  // contract violation, not a silent default.
  gen::Operator broken = mac;
  broken.spec.accumulation_cycles = 0;
  EXPECT_THROW(ExtractActivityScalar(broken, 0, 64, 1), CheckError);
}

TEST(Activity, DeterministicInSeed) {
  const gen::Operator op = gen::BuildBoothOperator(8);
  const ActivityProfile a = ExtractActivity(op, 2, 128, 42);
  const ActivityProfile b = ExtractActivity(op, 2, 128, 42);
  EXPECT_EQ(a.toggle_rate, b.toggle_rate);
}

TEST(Activity, UniformBeatsCorrelatedOnMsbs) {
  // Correlated DSP data toggles high-order bits less than uniform
  // noise — the reason activity annotation matters.
  const gen::Operator op = gen::BuildBoothOperator(16);
  const ActivityProfile uni =
      ExtractActivity(op, 0, 1024, 5, StimulusKind::kUniform);
  const ActivityProfile cor =
      ExtractActivity(op, 0, 1024, 5, StimulusKind::kCorrelated);
  const netlist::Bus& a = op.nl.InputBus("a");
  const auto msb = a.bits[15];
  EXPECT_LT(cor.RateOf(msb), uni.RateOf(msb));
}

TEST(Vcd, HeaderAndChangesWellFormed) {
  netlist::Netlist nl("toggler");
  const auto d = nl.AddInputPort("d");
  const auto q = nl.AddGate(CellKind::kDff, {d});
  nl.AddOutputPort("q", q);
  LogicSim sim(nl);
  sim.Reset();
  VcdRecorder rec(nl, {});
  std::ostringstream os;
  rec.WriteHeader(os, sim);
  for (int t = 0; t < 4; ++t) {
    sim.SetInput(d, t % 2 == 0);
    sim.Tick();
    rec.Sample(os, sim, (std::uint64_t)t);
  }
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
}

TEST(Vcd, SampleBeforeHeaderRejected) {
  netlist::Netlist nl;
  const auto d = nl.AddInputPort("d");
  nl.AddOutputPort("q", nl.AddGate(CellKind::kBuf, {d}));
  LogicSim sim(nl);
  VcdRecorder rec(nl, {});
  std::ostringstream os;
  EXPECT_THROW(rec.Sample(os, sim, 0), CheckError);
}

}  // namespace
}  // namespace adq::sim
