/// The determinism contract of the parallel design-space exploration
/// (ExplorationResult bit-identical for every num_threads) plus unit
/// tests of the util::ThreadPool it runs on. Everything here carries
/// the `parallel` CTest label so `ctest -L parallel` exercises the
/// concurrency surface under ThreadSanitizer (see the tsan preset).

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "core/band_optimizer.h"
#include "core/explore.h"
#include "util/thread_pool.h"

namespace adq {
namespace {

// ---------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr int kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, 7, [&](std::int64_t i, int worker) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, pool.num_threads());
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[(std::size_t)i].load(), 1);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  util::ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 1, [&](std::int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n <= grain runs inline on the caller, in order.
  std::vector<std::int64_t> seen;
  pool.ParallelFor(3, 10, [&](std::int64_t i, int worker) {
    EXPECT_EQ(worker, 0);
    seen.push_back(i);
  });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(ThreadPool, SingleThreadPoolRunsInlineOnCaller) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id me = std::this_thread::get_id();
  pool.ParallelFor(64, 1, [&](std::int64_t, int worker) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(std::this_thread::get_id(), me);
  });
}

TEST(ThreadPool, ReusableAcrossCalls) {
  util::ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.ParallelFor(100, 3,
                     [&](std::int64_t i, int) { sum.fetch_add(i); });
    ASSERT_EQ(sum.load(), 100 * 99 / 2);
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  util::ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(1000, 1,
                                [&](std::int64_t i, int) {
                                  if (i == 137)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> ok{0};
  pool.ParallelFor(10, 1, [&](std::int64_t, int) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, ResolveNumThreads) {
  EXPECT_EQ(util::ResolveNumThreads(1), 1);
  EXPECT_EQ(util::ResolveNumThreads(5), 5);
  EXPECT_GE(util::ResolveNumThreads(0), 1);
}

// ---------------------------------------------------------------
// Parallel exploration: bit-identical to the serial reference.

const tech::CellLibrary& Lib() {
  static const tech::CellLibrary lib;
  return lib;
}

/// Same small design as test_explore (width-8 Booth, 2x2 grid) so
/// failures here point at the engine, not the substrate.
const core::ImplementedDesign& Design22() {
  static const core::ImplementedDesign d = [] {
    core::FlowOptions fopt;
    fopt.grid = {2, 2};
    fopt.clock_ns = 0.55;
    return core::RunImplementationFlow(gen::BuildBoothOperator(8), Lib(),
                                       fopt);
  }();
  return d;
}

core::ExploreOptions BaseOptions() {
  core::ExploreOptions opt;
  opt.bitwidths = {2, 4, 6, 8};
  opt.activity_cycles = 128;
  opt.keep_all_points = true;
  return opt;
}

void ExpectPointsIdentical(const core::ExploredPoint& a,
                           const core::ExploredPoint& b) {
  EXPECT_EQ(a.bitwidth, b.bitwidth);
  EXPECT_EQ(a.mask, b.mask);
  EXPECT_EQ(a.rbb_mask, b.rbb_mask);
  EXPECT_EQ(a.feasible, b.feasible);
  // Bit-identical, not just close: EXPECT_EQ compares with ==.
  EXPECT_EQ(a.vdd, b.vdd);
  EXPECT_EQ(a.wns_ns, b.wns_ns);
  EXPECT_EQ(a.power.dynamic_w, b.power.dynamic_w);
  EXPECT_EQ(a.power.leakage_w, b.power.leakage_w);
}

void ExpectResultsIdentical(const core::ExplorationResult& a,
                            const core::ExplorationResult& b) {
  EXPECT_EQ(a.stats.points_considered, b.stats.points_considered);
  EXPECT_EQ(a.stats.sta_runs, b.stats.sta_runs);
  EXPECT_EQ(a.stats.filtered, b.stats.filtered);
  EXPECT_EQ(a.stats.pruned, b.stats.pruned);
  EXPECT_EQ(a.stats.mask_pruned, b.stats.mask_pruned);
  EXPECT_EQ(a.stats.feasible, b.stats.feasible);
  ASSERT_EQ(a.modes.size(), b.modes.size());
  for (std::size_t i = 0; i < a.modes.size(); ++i) {
    EXPECT_EQ(a.modes[i].bitwidth, b.modes[i].bitwidth);
    EXPECT_EQ(a.modes[i].has_solution, b.modes[i].has_solution);
    EXPECT_EQ(a.modes[i].switched_energy_fj,
              b.modes[i].switched_energy_fj);
    if (a.modes[i].has_solution)
      ExpectPointsIdentical(a.modes[i].best, b.modes[i].best);
  }
  ASSERT_EQ(a.all_points.size(), b.all_points.size());
  for (std::size_t i = 0; i < a.all_points.size(); ++i)
    ExpectPointsIdentical(a.all_points[i], b.all_points[i]);
}

core::ExplorationResult RunExplore(core::ExploreOptions opt, int num_threads) {
  opt.num_threads = num_threads;
  return core::ExploreDesignSpace(Design22(), Lib(), opt);
}

TEST(ParallelExplore, BitIdenticalAcrossThreadCounts) {
  const core::ExplorationResult serial = RunExplore(BaseOptions(), 1);
  for (const int nt : {2, 8}) {
    SCOPED_TRACE("num_threads = " + std::to_string(nt));
    ExpectResultsIdentical(serial, RunExplore(BaseOptions(), nt));
  }
}

TEST(ParallelExplore, BitIdenticalWithoutPruning) {
  core::ExploreOptions opt = BaseOptions();
  opt.monotonic_pruning = false;
  const core::ExplorationResult serial = RunExplore(opt, 1);
  for (const int nt : {2, 8}) {
    SCOPED_TRACE("num_threads = " + std::to_string(nt));
    ExpectResultsIdentical(serial, RunExplore(opt, nt));
  }
}

TEST(ParallelExplore, BitIdenticalWithRbbSleep) {
  core::ExploreOptions opt = BaseOptions();
  opt.enable_rbb_sleep = true;
  const core::ExplorationResult serial = RunExplore(opt, 1);
  for (const int nt : {2, 8}) {
    SCOPED_TRACE("num_threads = " + std::to_string(nt));
    ExpectResultsIdentical(serial, RunExplore(opt, nt));
  }
}

TEST(ParallelExplore, HardwareDefaultMatchesSerial) {
  // num_threads = 0 resolves to hardware concurrency — whatever that
  // is on the machine running the test, the contract holds.
  ExpectResultsIdentical(RunExplore(BaseOptions(), 1), RunExplore(BaseOptions(), 0));
}

TEST(ParallelExplore, BitIdenticalAcrossBatchWidths) {
  // The batched STA kernel is a pure throughput knob: every lane is
  // bit-identical to a scalar run, so any batch width produces the
  // same ExplorationResult — including all_points, since BaseOptions
  // keeps them.
  core::ExploreOptions opt = BaseOptions();
  opt.batch_width = 1;
  const core::ExplorationResult scalar = RunExplore(opt, 1);
  for (const int w : {3, 8, 64}) {
    for (const int nt : {1, 8}) {
      SCOPED_TRACE("batch_width = " + std::to_string(w) +
                   ", num_threads = " + std::to_string(nt));
      opt.batch_width = w;
      ExpectResultsIdentical(scalar, RunExplore(opt, nt));
    }
  }
}

void ExpectModesIdentical(const core::ExplorationResult& a,
                          const core::ExplorationResult& b) {
  ASSERT_EQ(a.modes.size(), b.modes.size());
  for (std::size_t i = 0; i < a.modes.size(); ++i) {
    EXPECT_EQ(a.modes[i].bitwidth, b.modes[i].bitwidth);
    EXPECT_EQ(a.modes[i].has_solution, b.modes[i].has_solution);
    EXPECT_EQ(a.modes[i].switched_energy_fj,
              b.modes[i].switched_energy_fj);
    if (a.modes[i].has_solution)
      ExpectPointsIdentical(a.modes[i].best, b.modes[i].best);
  }
}

TEST(ParallelExplore, MaskPruningIsExact) {
  // Mask-dominance pruning never changes what is found — only how
  // much STA is spent finding it. Every stat except the sta_runs /
  // mask_pruned split must be identical with the prune on and off,
  // at any thread count.
  core::ExploreOptions on = BaseOptions();
  on.keep_all_points = false;  // prune stands down otherwise
  core::ExploreOptions off = on;
  off.mask_pruning = false;
  const core::ExplorationResult r_on = RunExplore(on, 1);
  const core::ExplorationResult r_off = RunExplore(off, 1);

  EXPECT_GT(r_on.stats.mask_pruned, 0);
  EXPECT_EQ(r_off.stats.mask_pruned, 0);
  EXPECT_LT(r_on.stats.sta_runs, r_off.stats.sta_runs);
  // The trade is exact: pruned lanes are precisely the STA runs saved.
  EXPECT_EQ(r_on.stats.sta_runs + r_on.stats.mask_pruned,
            r_off.stats.sta_runs);
  EXPECT_EQ(r_on.stats.points_considered, r_off.stats.points_considered);
  EXPECT_EQ(r_on.stats.filtered, r_off.stats.filtered);
  EXPECT_EQ(r_on.stats.pruned, r_off.stats.pruned);
  EXPECT_EQ(r_on.stats.feasible, r_off.stats.feasible);
  ExpectModesIdentical(r_on, r_off);

  for (const int nt : {8}) {
    SCOPED_TRACE("num_threads = " + std::to_string(nt));
    ExpectResultsIdentical(r_on, RunExplore(on, nt));
    ExpectResultsIdentical(r_off, RunExplore(off, nt));
  }
}

TEST(ParallelExplore, MaskPruningInactiveWithKeptPoints) {
  // keep_all_points records the computed wns_ns of every infeasible
  // point, which a dominance skip cannot supply — so the prune must
  // stand down and the full lattice must still be analyzed.
  core::ExploreOptions opt = BaseOptions();
  ASSERT_TRUE(opt.keep_all_points);
  ASSERT_TRUE(opt.mask_pruning);
  const core::ExplorationResult r = RunExplore(opt, 8);
  EXPECT_EQ(r.stats.mask_pruned, 0);
  EXPECT_EQ(r.all_points.size(),
            static_cast<std::size_t>(r.stats.points_considered -
                                     r.stats.pruned));
}

TEST(ParallelExplore, PruningStillSavesStaRuns) {
  core::ExploreOptions pruned = BaseOptions();
  core::ExploreOptions full = BaseOptions();
  full.monotonic_pruning = false;
  EXPECT_GT(RunExplore(full, 8).stats.sta_runs, RunExplore(pruned, 8).stats.sta_runs);
}

TEST(ParallelCriticality, ScoresMatchSerial) {
  const core::ImplementedDesign& d = Design22();
  const std::vector<int> probes = {2, 4, 6, 8};
  const std::vector<double> serial =
      core::AccuracyCriticality(d.op, Lib(), d.loads, d.clock_ns, probes,
                                0.12 * d.clock_ns, /*num_threads=*/1);
  const std::vector<double> parallel =
      core::AccuracyCriticality(d.op, Lib(), d.loads, d.clock_ns, probes,
                                0.12 * d.clock_ns, /*num_threads=*/8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]) << "instance " << i;
}

}  // namespace
}  // namespace adq
