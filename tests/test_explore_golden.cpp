/// Golden regression pin for the design-space exploration: exact
/// stats counters and per-mode optima on a small fixed design
/// (width-8 Booth, 2x2 grid, 0.55 ns clock, default seed). Any
/// refactor of the explorer, the STA engine, the activity simulator
/// or the power model that shifts these numbers — even slightly —
/// fails here instead of silently changing every downstream result.
///
/// If a change is *intended* to shift them (model recalibration, new
/// pruning), re-derive the constants by running this test and copying
/// the "golden actual:" lines it prints on failure.

#include <gtest/gtest.h>

#include "core/explore.h"
#include "obs/obs.h"

namespace adq::core {
namespace {

const tech::CellLibrary& Lib() {
  static const tech::CellLibrary lib;
  return lib;
}

const ImplementedDesign& Design() {
  static const ImplementedDesign design = [] {
    FlowOptions fopt;
    fopt.grid = {2, 2};
    fopt.clock_ns = 0.55;
    return RunImplementationFlow(gen::BuildBoothOperator(8), Lib(), fopt);
  }();
  return design;
}

ExploreOptions GoldenOptions(int num_threads,
                             StaEngine engine = StaEngine::kIncremental) {
  ExploreOptions opt;
  opt.bitwidths = {2, 4, 6, 8};
  opt.activity_cycles = 128;
  opt.num_threads = num_threads;
  opt.sta_engine = engine;
  return opt;
}

const ExplorationResult& Result() {
  static const ExplorationResult r =
      ExploreDesignSpace(Design(), Lib(), GoldenOptions(1));
  return r;
}

struct GoldenMode {
  int bitwidth;
  double vdd;
  std::uint32_t mask;
  double total_power_w;
};

// --- Golden values (single deterministic run; see file comment).
// The paper reports ~75% of points filtered on its 16-bit designs;
// this deliberately tight 8-bit fixture filters harder (92.8%), which
// the range assertions below accommodate.
constexpr long kPointsConsidered = 320;
constexpr long kStaRuns = 37;
constexpr long kFiltered = 297;
// Monotone-pruning hits: points whose infeasibility was implied by a
// smaller bitwidth, skipped without an STA run. Mask-dominance hits:
// points whose infeasibility was implied by a failing supermask at
// the same (VDD, bitwidth). Consistency: kPointsConsidered = kStaRuns
// + kPruned + kMaskPruned, and kFiltered = kPruned + kMaskPruned +
// (kStaRuns - kFeasible). Before mask pruning this fixture ran 102
// STAs; dominance converts 65 of them into free skips while leaving
// every other counter (and all mode optima) untouched.
constexpr long kPruned = 218;
constexpr long kMaskPruned = 65;
constexpr long kFeasible = 23;
constexpr double kFilterRate = 0.92812499999999998;
constexpr GoldenMode kModes[] = {
    {2, 1.0, 0x8u, 4.0313686167828538e-4},
    {4, 1.0, 0xcu, 9.1540758518646008e-4},
    {6, 1.0, 0xfu, 1.4824010320673526e-3},
    {8, 1.0, 0xfu, 1.8153329756601293e-3},
};

TEST(ExploreGolden, StatsExactlyPinned) {
  const ExplorationResult& r = Result();
  std::printf("golden actual: points=%ld sta=%ld filtered=%ld "
              "pruned=%ld mask_pruned=%ld feasible=%ld rate=%.17g\n",
              r.stats.points_considered, r.stats.sta_runs,
              r.stats.filtered, r.stats.pruned, r.stats.mask_pruned,
              r.stats.feasible, r.stats.FilterRate());
  EXPECT_EQ(r.stats.points_considered, kPointsConsidered);
  EXPECT_EQ(r.stats.sta_runs, kStaRuns);
  EXPECT_EQ(r.stats.filtered, kFiltered);
  EXPECT_EQ(r.stats.pruned, kPruned);
  EXPECT_EQ(r.stats.mask_pruned, kMaskPruned);
  EXPECT_EQ(r.stats.feasible, kFeasible);
  // Every lattice point either got an STA run or was pruned away.
  EXPECT_EQ(r.stats.sta_runs + r.stats.pruned + r.stats.mask_pruned,
            r.stats.points_considered);
  EXPECT_NEAR(r.stats.FilterRate(), kFilterRate, 1e-12);
  // The paper's headline: the STA filter discards a large majority
  // (~75%) of the exhaustive lattice.
  EXPECT_GT(r.stats.FilterRate(), 0.5);
  EXPECT_LT(r.stats.FilterRate(), 0.95);
}

TEST(ExploreGolden, PerModeOptimaPinned) {
  const ExplorationResult& r = Result();
  ASSERT_EQ(r.modes.size(), std::size(kModes));
  for (std::size_t i = 0; i < std::size(kModes); ++i) {
    const ModeResult& m = r.modes[i];
    ASSERT_TRUE(m.has_solution) << "bitwidth " << kModes[i].bitwidth;
    std::printf("golden actual: bw=%d vdd=%.17g mask=0x%x power=%.17g\n",
                m.bitwidth, m.best.vdd, m.best.mask,
                m.best.total_power_w());
    EXPECT_EQ(m.bitwidth, kModes[i].bitwidth);
    EXPECT_EQ(m.best.vdd, kModes[i].vdd);
    EXPECT_EQ(m.best.mask, kModes[i].mask);
    // Tight relative pin (not bit-exact) so a legitimate FP-reorder
    // in a compiler upgrade doesn't fire, but any model change does.
    EXPECT_NEAR(m.best.total_power_w(), kModes[i].total_power_w,
                1e-9 * kModes[i].total_power_w + 1e-18);
  }
}

// The golden pins hold for BOTH STA engines at BOTH thread counts:
// the incremental engine's bit-identity contract means swapping
// engines (or re-scheduling chunks across workers) can change no
// stat, no optimum and no wns — only the hits/fallbacks telemetry.
TEST(ExploreGolden, EngineAndThreadCountInvariant) {
  const ExplorationResult& ref = Result();
  for (const StaEngine engine : {StaEngine::kBatch, StaEngine::kIncremental}) {
    for (const int nt : {1, 8}) {
      SCOPED_TRACE(std::string(engine == StaEngine::kBatch
                                   ? "batch"
                                   : "incremental") +
                   " nt=" + std::to_string(nt));
      const ExplorationResult r =
          ExploreDesignSpace(Design(), Lib(), GoldenOptions(nt, engine));
      EXPECT_EQ(r.stats.points_considered, kPointsConsidered);
      EXPECT_EQ(r.stats.sta_runs, kStaRuns);
      EXPECT_EQ(r.stats.filtered, kFiltered);
      EXPECT_EQ(r.stats.pruned, kPruned);
      EXPECT_EQ(r.stats.mask_pruned, kMaskPruned);
      EXPECT_EQ(r.stats.feasible, kFeasible);
      if (engine == StaEngine::kBatch) {
        EXPECT_EQ(r.stats.sta_incremental_hits, 0);
        EXPECT_EQ(r.stats.sta_full_fallbacks, 0);
        EXPECT_EQ(r.stats.sta_dispatch_dense, 0);
      } else {
        // Every engine call is a fallback, an incremental hit, or an
        // adaptive dense dispatch; the first call of each context is
        // always a fallback.
        EXPECT_GT(r.stats.sta_full_fallbacks, 0);
        // Hit counts depend on how chunks land on workers, so they
        // are only guaranteed (and deterministic) on the serial
        // schedule: with 8 workers this tiny fixture can spread its
        // few chunks one-per-engine.
        if (nt == 1) {
          EXPECT_GT(r.stats.sta_incremental_hits +
                        r.stats.sta_dispatch_dense,
                    0);
        }
      }
      ASSERT_EQ(r.modes.size(), ref.modes.size());
      for (std::size_t i = 0; i < ref.modes.size(); ++i) {
        // Bit-identical to the reference run, not merely close: the
        // engines share every FP expression.
        EXPECT_EQ(r.modes[i].best.vdd, ref.modes[i].best.vdd);
        EXPECT_EQ(r.modes[i].best.mask, ref.modes[i].best.mask);
        EXPECT_EQ(r.modes[i].best.wns_ns, ref.modes[i].best.wns_ns);
        EXPECT_EQ(r.modes[i].best.total_power_w(),
                  ref.modes[i].best.total_power_w());
      }
    }
  }
}

// The observability layer must report exactly what ExplorationStats
// reports: the metrics snapshot is folded from the final stats in the
// deterministic merge, so the counters are identical at any thread
// count. Pinned at 1 (serial reference) and 8 (sharded path).
TEST(ExploreGolden, MetricsSnapshotMirrorsStats) {
#ifdef ADQ_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (ADQ_OBS=OFF)";
#else
  for (const int nt : {1, 8}) {
    obs::EnableMetrics(true);
    obs::ResetMetrics();
    const ExplorationResult r =
        ExploreDesignSpace(Design(), Lib(), GoldenOptions(nt));
    const obs::MetricsSnapshot snap = obs::SnapshotMetrics();
    obs::EnableMetrics(false);

    SCOPED_TRACE("num_threads=" + std::to_string(nt));
    ASSERT_TRUE(snap.counters.count("explore.sta_runs"));
    EXPECT_EQ(snap.counters.at("explore.sta_runs"), r.stats.sta_runs);
    EXPECT_EQ(snap.counters.at("explore.pruned_hits"), r.stats.pruned);
    EXPECT_EQ(snap.counters.at("explore.mask_pruned"),
              r.stats.mask_pruned);
    EXPECT_EQ(snap.counters.at("explore.filtered"), r.stats.filtered);
    EXPECT_EQ(snap.counters.at("explore.feasible"), r.stats.feasible);
    EXPECT_EQ(snap.counters.at("explore.points_considered"),
              r.stats.points_considered);
    EXPECT_EQ(snap.counters.at("explore.runs"), 1);
    // And the run itself still matches the golden pin — in particular
    // the dominance prune fires identically at both thread counts.
    EXPECT_EQ(r.stats.sta_runs, kStaRuns);
    EXPECT_EQ(r.stats.pruned, kPruned);
    EXPECT_EQ(r.stats.mask_pruned, kMaskPruned);
    // The live sta.* counters mirror the explorer's accounting: under
    // the (default) incremental engine every explore-issued STA run is
    // one lane of one IncrementalSta::AnalyzeBatch call, and the
    // batch-kernel lanes are exactly the fallback subset re-run on the
    // oracle.
    ASSERT_TRUE(snap.counters.count("sta.incremental_lanes"));
    ASSERT_TRUE(snap.counters.count("sta.batch_lanes"));
    EXPECT_EQ(snap.counters.at("sta.incremental_lanes"),
              r.stats.sta_runs);
    EXPECT_LE(snap.counters.at("sta.batch_lanes"), r.stats.sta_runs);
    EXPECT_EQ(snap.counters.at("sta.incremental_hits"),
              r.stats.sta_incremental_hits);
    EXPECT_EQ(snap.counters.at("sta.full_fallbacks"),
              r.stats.sta_full_fallbacks);
  }
#endif
}

}  // namespace
}  // namespace adq::core
