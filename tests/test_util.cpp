/// Tests for src/util: checks, RNG determinism, histogram binning,
/// table rendering, fixed-point helpers.

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/fixed_point.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/table.h"

namespace adq {
namespace {

TEST(Check, ThrowsOnFailureWithContext) {
  EXPECT_THROW(ADQ_CHECK(1 == 2), CheckError);
  try {
    ADQ_CHECK_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(ADQ_CHECK(2 + 2 == 4));
}

TEST(Rng, DeterministicAcrossInstances) {
  util::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Word(), b.Word());
}

TEST(Rng, UniformIntInRange) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01Bounds) {
  util::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, FlipProbabilityRoughlyRespected) {
  util::Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Flip(0.25);
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
}

TEST(Histogram, BinsAndClamping) {
  util::Histogram h(0.0, 1.0, 10);
  h.Add(0.05);   // bin 0
  h.Add(0.95);   // bin 9
  h.Add(-3.0);   // clamped to bin 0
  h.Add(7.0);    // clamped to bin 9
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(9), 2);
  EXPECT_EQ(h.total(), 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 1.0);
}

TEST(Histogram, BinOfEdges) {
  util::Histogram h(-0.3, 0.4, 14);
  EXPECT_EQ(h.BinOf(-0.3), 0);
  EXPECT_EQ(h.BinOf(0.399), 13);
  // Clearly-interior samples land in their bin (exact edge behaviour
  // is floating-point dependent and deliberately unspecified).
  EXPECT_EQ(h.BinOf(-0.249), 1);
  EXPECT_EQ(h.BinOf(-0.201), 1);
}

TEST(Histogram, RenderMarksViolations) {
  util::Histogram h(-0.2, 0.2, 4);
  h.Add(-0.15);
  h.Add(0.15);
  const std::string s = h.Render(0.0, "slack");
  EXPECT_NE(s.find("violating"), std::string::npos);
}

TEST(Table, AlignedRender) {
  util::Table t({"a", "bbbb"});
  t.AddRow({"1", "2"});
  const std::string s = t.Render();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, CsvRender) {
  util::Table t({"x", "y"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.RenderCsv(), "x,y\n1,2\n");
}

TEST(Table, RowArityChecked) {
  util::Table t({"x", "y"});
  EXPECT_THROW(t.AddRow({"only-one"}), CheckError);
}

TEST(FixedPoint, MaskLsbs) {
  EXPECT_EQ(util::MaskLsbs(0xFFFF, 16, 4), 0xFFF0u);
  EXPECT_EQ(util::MaskLsbs(0xFFFF, 16, 0), 0xFFFFu);
  EXPECT_EQ(util::MaskLsbs(0xFFFF, 16, 16), 0u);
  EXPECT_EQ(util::MaskLsbs(0x12345, 16, 8), 0x2300u);  // width-trimmed
}

TEST(FixedPoint, SignedRoundTrip) {
  for (const std::int64_t v : {-32768LL, -1LL, 0LL, 1LL, 32767LL}) {
    EXPECT_EQ(util::ToSigned(util::FromSigned(v, 16), 16), v);
  }
}

TEST(FixedPoint, ToSignedSignExtension) {
  EXPECT_EQ(util::ToSigned(0x8000, 16), -32768);
  EXPECT_EQ(util::ToSigned(0xFFFF, 16), -1);
  EXPECT_EQ(util::ToSigned(0x7FFF, 16), 32767);
}

TEST(FixedPoint, Bit) {
  EXPECT_TRUE(util::Bit(0b100, 2));
  EXPECT_FALSE(util::Bit(0b100, 1));
}

/// Property sweep: masking then sign-decoding equals arithmetic
/// truncation toward the masked grid.
class MaskProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaskProperty, MaskedValueIsMultipleOfStep) {
  const int z = GetParam();
  util::Rng rng(z + 1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t raw = rng.Word() & 0xFFFF;
    const std::uint64_t masked = util::MaskLsbs(raw, 16, z);
    EXPECT_EQ(masked % (1ULL << z), 0u);
    // Masking never increases the unsigned value.
    EXPECT_LE(masked, raw);
  }
}

INSTANTIATE_TEST_SUITE_P(AllZeroCounts, MaskProperty,
                         ::testing::Values(0, 1, 3, 7, 12, 16));

}  // namespace
}  // namespace adq
