/// Tests for src/util: checks, RNG determinism, histogram binning,
/// table rendering, fixed-point helpers.

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/fixed_point.h"
#include "util/histogram.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/table.h"

namespace adq {
namespace {

TEST(Check, ThrowsOnFailureWithContext) {
  EXPECT_THROW(ADQ_CHECK(1 == 2), CheckError);
  try {
    ADQ_CHECK_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(ADQ_CHECK(2 + 2 == 4));
}

TEST(Rng, DeterministicAcrossInstances) {
  util::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Word(), b.Word());
}

TEST(Rng, UniformIntInRange) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01Bounds) {
  util::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, FlipProbabilityRoughlyRespected) {
  util::Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Flip(0.25);
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
}

TEST(Histogram, BinsAndClamping) {
  util::Histogram h(0.0, 1.0, 10);
  h.Add(0.05);   // bin 0
  h.Add(0.95);   // bin 9
  h.Add(-3.0);   // clamped to bin 0
  h.Add(7.0);    // clamped to bin 9
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(9), 2);
  EXPECT_EQ(h.total(), 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 1.0);
}

TEST(Histogram, BinOfEdges) {
  util::Histogram h(-0.3, 0.4, 14);
  EXPECT_EQ(h.BinOf(-0.3), 0);
  EXPECT_EQ(h.BinOf(0.399), 13);
  // Clearly-interior samples land in their bin (exact edge behaviour
  // is floating-point dependent and deliberately unspecified).
  EXPECT_EQ(h.BinOf(-0.249), 1);
  EXPECT_EQ(h.BinOf(-0.201), 1);
}

TEST(Histogram, SumTracksRawSamples) {
  util::Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  h.Add(1.5);
  h.Add(8.5);
  h.Add(100.0);  // clamped into the last bin, but sum stays raw
  EXPECT_DOUBLE_EQ(h.sum(), 110.0);
  EXPECT_EQ(h.total(), 3);
}

TEST(Histogram, QuantileEmptyHistogram) {
  util::Histogram h(-4.0, 4.0, 8);
  // Pinned edge: an empty histogram reports the range's lower edge.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), -4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), -4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), -4.0);
}

TEST(Histogram, QuantileSingleSample) {
  util::Histogram h(0.0, 10.0, 10);
  h.Add(3.5);  // bin 3 = [3,4)
  // Every quantile lands inside the one occupied bin.
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.Quantile(q), 3.0) << "q=" << q;
    EXPECT_LE(h.Quantile(q), 4.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 4.0);
}

TEST(Histogram, QuantileAllEqualSamples) {
  util::Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 1000; ++i) h.Add(0.55);  // all in bin 5
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.6);
  EXPECT_GE(h.Quantile(0.5), 0.5);
  EXPECT_LE(h.Quantile(0.5), 0.6);
}

TEST(Histogram, QuantileInterpolatesAndOrders) {
  util::Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);  // one per bin
  // Median of a uniform [0,100) fill is ~50, p90 ~90.
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.0);
  double prev = h.Quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = h.Quantile(q);
    EXPECT_GE(cur, prev) << "quantile not monotone at q=" << q;
    prev = cur;
  }
}

TEST(Histogram, QuantileOverflowSamplesStayInRange) {
  util::Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(1e9);    // clamp into last bin
  for (int i = 0; i < 10; ++i) h.Add(-1e9);   // clamp into first bin
  // Out-of-range q is clamped too.
  for (const double q : {-1.0, 0.0, 0.5, 1.0, 2.0}) {
    EXPECT_GE(h.Quantile(q), 0.0) << "q=" << q;
    EXPECT_LE(h.Quantile(q), 10.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);
}

TEST(Json, ParsesScalarsObjectsArrays) {
  std::string err;
  const util::Json doc = util::Json::Parse(
      R"({"a": 1.5, "b": "two", "c": [true, false, null], "d": {"e": -3e2}})",
      &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.Get("a")->AsNumber(), 1.5);
  EXPECT_EQ(doc.Get("b")->AsString(), "two");
  const util::Json* c = doc.Get("c");
  ASSERT_TRUE(c && c->is_array());
  ASSERT_EQ(c->items().size(), 3u);
  EXPECT_TRUE(c->items()[0].AsBool());
  EXPECT_FALSE(c->items()[1].AsBool());
  EXPECT_TRUE(c->items()[2].is_null());
  EXPECT_DOUBLE_EQ(doc.GetPath("d.e")->AsNumber(), -300.0);
  EXPECT_EQ(doc.Get("missing"), nullptr);
  EXPECT_EQ(doc.GetPath("d.missing"), nullptr);
}

TEST(Json, StringEscapes) {
  std::string err;
  const util::Json doc = util::Json::Parse(
      R"({"s": "q\" b\\ s\/ n\n t\t r\r bs\b ff\f"})", &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(doc.Get("s")->AsString(), "q\" b\\ s/ n\n t\t r\r bs\b ff\f");
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  std::string err;
  const util::Json doc = util::Json::Parse(
      R"(["\u0041", "\u00e9", "\u20ac", "\u0001"])", &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(doc.items()[0].AsString(), "A");
  EXPECT_EQ(doc.items()[1].AsString(), "\xC3\xA9");      // é
  EXPECT_EQ(doc.items()[2].AsString(), "\xE2\x82\xAC");  // euro sign
  EXPECT_EQ(doc.items()[3].AsString(), "\x01");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\" 1}", "{\"a\": }", "tru", "01abc",
        "\"unterminated", "{\"a\": 1} extra", "{'single': 1}",
        "{\"raw\nnewline\": 1}", "[1, ]trail", "nan", "+5"}) {
    EXPECT_FALSE(util::Json::Valid(bad)) << "accepted: " << bad;
    std::string err;
    util::Json::Parse(bad, &err);
    EXPECT_FALSE(err.empty()) << "no error message for: " << bad;
  }
}

TEST(Json, NumbersRoundTrip) {
  std::string err;
  const util::Json doc = util::Json::Parse(
      R"([0, -0.5, 1e3, 1E-3, 123456789.25, -2e+2])", &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(doc.items().size(), 6u);
  EXPECT_DOUBLE_EQ(doc.items()[0].AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(doc.items()[1].AsNumber(), -0.5);
  EXPECT_DOUBLE_EQ(doc.items()[2].AsNumber(), 1000.0);
  EXPECT_DOUBLE_EQ(doc.items()[3].AsNumber(), 0.001);
  EXPECT_DOUBLE_EQ(doc.items()[4].AsNumber(), 123456789.25);
  EXPECT_DOUBLE_EQ(doc.items()[5].AsNumber(), -200.0);
}

TEST(Json, FieldOrderIsPreserved) {
  std::string err;
  const util::Json doc =
      util::Json::Parse(R"({"z": 1, "a": 2, "m": 3})", &err);
  ASSERT_TRUE(err.empty());
  ASSERT_EQ(doc.fields().size(), 3u);
  EXPECT_EQ(doc.fields()[0].first, "z");
  EXPECT_EQ(doc.fields()[1].first, "a");
  EXPECT_EQ(doc.fields()[2].first, "m");
}

TEST(Histogram, RenderMarksViolations) {
  util::Histogram h(-0.2, 0.2, 4);
  h.Add(-0.15);
  h.Add(0.15);
  const std::string s = h.Render(0.0, "slack");
  EXPECT_NE(s.find("violating"), std::string::npos);
}

TEST(Table, AlignedRender) {
  util::Table t({"a", "bbbb"});
  t.AddRow({"1", "2"});
  const std::string s = t.Render();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, CsvRender) {
  util::Table t({"x", "y"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.RenderCsv(), "x,y\n1,2\n");
}

TEST(Table, RowArityChecked) {
  util::Table t({"x", "y"});
  EXPECT_THROW(t.AddRow({"only-one"}), CheckError);
}

TEST(FixedPoint, MaskLsbs) {
  EXPECT_EQ(util::MaskLsbs(0xFFFF, 16, 4), 0xFFF0u);
  EXPECT_EQ(util::MaskLsbs(0xFFFF, 16, 0), 0xFFFFu);
  EXPECT_EQ(util::MaskLsbs(0xFFFF, 16, 16), 0u);
  EXPECT_EQ(util::MaskLsbs(0x12345, 16, 8), 0x2300u);  // width-trimmed
}

TEST(FixedPoint, SignedRoundTrip) {
  for (const std::int64_t v : {-32768LL, -1LL, 0LL, 1LL, 32767LL}) {
    EXPECT_EQ(util::ToSigned(util::FromSigned(v, 16), 16), v);
  }
}

TEST(FixedPoint, ToSignedSignExtension) {
  EXPECT_EQ(util::ToSigned(0x8000, 16), -32768);
  EXPECT_EQ(util::ToSigned(0xFFFF, 16), -1);
  EXPECT_EQ(util::ToSigned(0x7FFF, 16), 32767);
}

TEST(FixedPoint, Bit) {
  EXPECT_TRUE(util::Bit(0b100, 2));
  EXPECT_FALSE(util::Bit(0b100, 1));
}

/// Property sweep: masking then sign-decoding equals arithmetic
/// truncation toward the masked grid.
class MaskProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaskProperty, MaskedValueIsMultipleOfStep) {
  const int z = GetParam();
  util::Rng rng(z + 1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t raw = rng.Word() & 0xFFFF;
    const std::uint64_t masked = util::MaskLsbs(raw, 16, z);
    EXPECT_EQ(masked % (1ULL << z), 0u);
    // Masking never increases the unsigned value.
    EXPECT_LE(masked, raw);
  }
}

INSTANTIATE_TEST_SUITE_P(AllZeroCounts, MaskProperty,
                         ::testing::Values(0, 1, 3, 7, 12, 16));

}  // namespace
}  // namespace adq
