/// Tests for the frontier branch-and-bound engine (core/frontier.h):
/// certificate equivalence against the exhaustive sweep (bit-identical
/// best points at any worker count), bounded-gap results under a node
/// budget, warm-starting from the persistent store (cold/warm runs
/// bit-identical, STA fully traded for store hits), and verdict
/// sharing between the frontier and exhaustive engines through one
/// store directory.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "core/explore.h"
#include "core/flow.h"
#include "core/frontier.h"
#include "store/exploration_store.h"

namespace adq::core {
namespace {

namespace fs = std::filesystem;

const tech::CellLibrary& Lib() {
  static const tech::CellLibrary lib;
  return lib;
}

/// Shared small design (width-8 Booth, 2x2): 16-mask lattice, small
/// enough that the exhaustive sweep is a fast oracle.
const ImplementedDesign& Design22() {
  static const ImplementedDesign d = [] {
    FlowOptions fopt;
    fopt.grid = {2, 2};
    fopt.clock_ns = 0.55;  // tight enough that knobs matter
    return RunImplementationFlow(gen::BuildBoothOperator(8), Lib(), fopt);
  }();
  return d;
}

FrontierOptions FastFrontier() {
  FrontierOptions opt;
  opt.bitwidths = {2, 4, 6, 8};
  opt.activity_cycles = 128;
  return opt;
}

ExploreOptions MatchingExhaustive() {
  ExploreOptions opt;
  opt.bitwidths = {2, 4, 6, 8};
  opt.activity_cycles = 128;
  return opt;
}

/// Bit-identical comparison of two mode tables (the frontier
/// certificate contract: ==, never near).
void ExpectModesIdentical(const std::vector<FrontierModeResult>& got,
                          const std::vector<ModeResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE("mode " + std::to_string(want[i].bitwidth) + " bit");
    EXPECT_EQ(got[i].bitwidth, want[i].bitwidth);
    ASSERT_EQ(got[i].has_solution, want[i].has_solution);
    EXPECT_EQ(got[i].switched_energy_fj, want[i].switched_energy_fj);
    if (!want[i].has_solution) continue;
    EXPECT_EQ(got[i].best.vdd, want[i].best.vdd);
    EXPECT_EQ(got[i].best.mask, want[i].best.mask);
    EXPECT_EQ(got[i].best.wns_ns, want[i].best.wns_ns);
    EXPECT_EQ(got[i].best.power.dynamic_w, want[i].best.power.dynamic_w);
    EXPECT_EQ(got[i].best.power.leakage_w, want[i].best.power.leakage_w);
  }
}

void ExpectFrontierIdentical(const FrontierResult& a,
                             const FrontierResult& b) {
  ASSERT_EQ(a.modes.size(), b.modes.size());
  for (std::size_t i = 0; i < a.modes.size(); ++i) {
    EXPECT_EQ(a.modes[i].has_solution, b.modes[i].has_solution);
    EXPECT_EQ(a.modes[i].best.vdd, b.modes[i].best.vdd);
    EXPECT_EQ(a.modes[i].best.mask, b.modes[i].best.mask);
    EXPECT_EQ(a.modes[i].best.wns_ns, b.modes[i].best.wns_ns);
    EXPECT_EQ(a.modes[i].best.power.dynamic_w,
              b.modes[i].best.power.dynamic_w);
    EXPECT_EQ(a.modes[i].best.power.leakage_w,
              b.modes[i].best.power.leakage_w);
    EXPECT_EQ(a.modes[i].certified, b.modes[i].certified);
    EXPECT_EQ(a.modes[i].gap_w, b.modes[i].gap_w);
    EXPECT_EQ(a.modes[i].nodes_expanded, b.modes[i].nodes_expanded);
  }
  EXPECT_EQ(a.stats.nodes_expanded, b.stats.nodes_expanded);
  EXPECT_EQ(a.stats.nodes_pruned_bound, b.stats.nodes_pruned_bound);
  EXPECT_EQ(a.stats.nodes_pruned_infeasible,
            b.stats.nodes_pruned_infeasible);
  EXPECT_EQ(a.stats.nodes_closed, b.stats.nodes_closed);
  EXPECT_EQ(a.stats.waves, b.stats.waves);
  EXPECT_EQ(a.stats.certified_modes, b.stats.certified_modes);
}

TEST(Frontier, CertificateMatchesExhaustiveAtAnyThreadCount) {
  const ExplorationResult oracle =
      ExploreDesignSpace(Design22(), Lib(), MatchingExhaustive());
  for (const int nt : {1, 8}) {
    SCOPED_TRACE("num_threads=" + std::to_string(nt));
    FrontierOptions opt = FastFrontier();
    opt.num_threads = nt;
    const FrontierResult fr = FrontierExplore(Design22(), Lib(), opt);
    EXPECT_EQ(fr.stats.certified_modes,
              static_cast<int>(fr.modes.size()));
    for (const FrontierModeResult& m : fr.modes) {
      EXPECT_TRUE(m.certified);
      EXPECT_EQ(m.gap_w, 0.0);
    }
    ExpectModesIdentical(fr.modes, oracle.modes);
  }
}

TEST(Frontier, TrajectoryIsThreadCountInvariant) {
  FrontierOptions a = FastFrontier();
  a.num_threads = 1;
  FrontierOptions b = FastFrontier();
  b.num_threads = 8;
  b.batch_width = 3;  // lane packing must not matter either
  ExpectFrontierIdentical(FrontierExplore(Design22(), Lib(), a),
                          FrontierExplore(Design22(), Lib(), b));
}

TEST(Frontier, WaveWidthChangesTrajectoryNotResult) {
  const ExplorationResult oracle =
      ExploreDesignSpace(Design22(), Lib(), MatchingExhaustive());
  for (const int w : {1, 3, 256}) {
    SCOPED_TRACE("wave_width=" + std::to_string(w));
    FrontierOptions opt = FastFrontier();
    opt.wave_width = w;
    const FrontierResult fr = FrontierExplore(Design22(), Lib(), opt);
    ExpectModesIdentical(fr.modes, oracle.modes);
  }
}

TEST(Frontier, IndexOrderBranchingStaysExact) {
  // Disabling the criticality probe only reorders the search; the
  // certificate still reproduces the exhaustive optimum.
  const ExplorationResult oracle =
      ExploreDesignSpace(Design22(), Lib(), MatchingExhaustive());
  FrontierOptions opt = FastFrontier();
  opt.criticality_slack_window_ns = 0.0;
  const FrontierResult fr = FrontierExplore(Design22(), Lib(), opt);
  ExpectModesIdentical(fr.modes, oracle.modes);
}

TEST(Frontier, BudgetYieldsIncumbentWithSoundGap) {
  const ExplorationResult oracle =
      ExploreDesignSpace(Design22(), Lib(), MatchingExhaustive());
  FrontierOptions opt = FastFrontier();
  opt.node_budget = 1;
  opt.wave_width = 1;
  const FrontierResult fr = FrontierExplore(Design22(), Lib(), opt);
  for (std::size_t i = 0; i < fr.modes.size(); ++i) {
    const FrontierModeResult& m = fr.modes[i];
    SCOPED_TRACE("mode " + std::to_string(m.bitwidth) + " bit");
    EXPECT_LE(m.nodes_expanded, 1);
    if (m.certified) continue;  // tiny lattice may still finish
    EXPECT_GE(m.gap_w, 0.0);
    ASSERT_TRUE(m.has_solution);  // root wave already folds verdicts
    const double optimum = oracle.modes[i].best.total_power_w();
    // The incumbent is a real feasible point, so it can only be
    // above the optimum; the proved gap must cover the distance.
    EXPECT_GE(m.best.total_power_w(), optimum);
    EXPECT_LE(m.best.total_power_w() - m.gap_w, optimum + 1e-15);
  }
}

TEST(Frontier, WarmStartFromOwnStoreIsBitIdenticalAndStaFree) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "frontier_warm_store";
  fs::remove_all(dir);
  FrontierResult cold, warm;
  {
    store::ExplorationStore st(dir.string());
    FrontierOptions opt = FastFrontier();
    opt.store = &st;
    cold = FrontierExplore(Design22(), Lib(), opt);
    EXPECT_GT(cold.stats.sta_runs, 0);
    EXPECT_EQ(cold.stats.store_hits, 0);
    ASSERT_TRUE(st.Flush());
  }
  {
    store::ExplorationStore st(dir.string());  // fresh process' view
    FrontierOptions opt = FastFrontier();
    opt.num_threads = 8;  // and a different worker count to boot
    opt.store = &st;
    warm = FrontierExplore(Design22(), Lib(), opt);
  }
  // Identical trajectory, every former STA run served by the store —
  // far beyond the required >= 5x reduction in STA evaluations.
  ExpectFrontierIdentical(cold, warm);
  EXPECT_EQ(warm.stats.sta_runs, 0);
  EXPECT_EQ(warm.stats.store_hits, cold.stats.sta_runs);
  EXPECT_GE(cold.stats.sta_runs, 5 * (warm.stats.sta_runs + 1));
  EXPECT_EQ(warm.stats.transfer_hits, cold.stats.transfer_hits);
}

TEST(Frontier, SharesVerdictsWithTheExhaustiveEngine) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "frontier_shared_store";
  fs::remove_all(dir);

  // Exhaustive cold run populates the store...
  ExplorationResult ex_cold, ex_warm;
  {
    store::ExplorationStore st(dir.string());
    ExploreOptions opt = MatchingExhaustive();
    opt.store = &st;
    ex_cold = ExploreDesignSpace(Design22(), Lib(), opt);
    EXPECT_GT(ex_cold.stats.sta_runs, 0);
    EXPECT_EQ(ex_cold.stats.store_hits, 0);
    ASSERT_TRUE(st.Flush());
  }
  // ...the frontier warm-starts from the exhaustive verdicts...
  {
    store::ExplorationStore st(dir.string());
    FrontierOptions opt = FastFrontier();
    opt.store = &st;
    const FrontierResult fr = FrontierExplore(Design22(), Lib(), opt);
    EXPECT_GT(fr.stats.store_hits, 0);
    ExpectModesIdentical(fr.modes, ex_cold.modes);
    ASSERT_TRUE(st.Flush());  // frontier-only verdicts join the store
  }
  // ...and a warm exhaustive run is bit-identical with the exact
  // sta_runs <-> store_hits trade (pruning untouched by the store).
  {
    store::ExplorationStore st(dir.string());
    ExploreOptions opt = MatchingExhaustive();
    opt.store = &st;
    ex_warm = ExploreDesignSpace(Design22(), Lib(), opt);
  }
  EXPECT_EQ(ex_warm.stats.sta_runs, 0);
  EXPECT_EQ(ex_warm.stats.store_hits, ex_cold.stats.sta_runs);
  EXPECT_EQ(ex_warm.stats.pruned, ex_cold.stats.pruned);
  EXPECT_EQ(ex_warm.stats.mask_pruned, ex_cold.stats.mask_pruned);
  EXPECT_EQ(ex_warm.stats.filtered, ex_cold.stats.filtered);
  EXPECT_EQ(ex_warm.stats.feasible, ex_cold.stats.feasible);
  ASSERT_EQ(ex_warm.modes.size(), ex_cold.modes.size());
  for (std::size_t i = 0; i < ex_warm.modes.size(); ++i) {
    EXPECT_EQ(ex_warm.modes[i].best.mask, ex_cold.modes[i].best.mask);
    EXPECT_EQ(ex_warm.modes[i].best.vdd, ex_cold.modes[i].best.vdd);
    EXPECT_EQ(ex_warm.modes[i].best.wns_ns,
              ex_cold.modes[i].best.wns_ns);
  }
}

TEST(Frontier, LargeGridCompletesUnderBudgetWithReportedGap) {
  // 25 domains: a 2^25 lattice per (vdd, bitwidth) row — far beyond
  // the exhaustive ceiling. The frontier must return within the node
  // budget and label every mode either certified or gap-bounded.
  FlowOptions fopt;
  fopt.grid = {5, 5};
  fopt.lint = lint::LintGate::kWarn;
  const ImplementedDesign d =
      RunImplementationFlow(gen::BuildBoothOperator(16), Lib(), fopt);
  ASSERT_EQ(d.num_domains(), 25);

  FrontierOptions opt;
  opt.bitwidths = {16};
  opt.activity_cycles = 64;
  opt.node_budget = 40;
  opt.wave_width = 8;
  const FrontierResult fr = FrontierExplore(d, Lib(), opt);
  ASSERT_EQ(fr.modes.size(), 1u);
  const FrontierModeResult& m = fr.modes[0];
  EXPECT_LE(m.nodes_expanded, 40);
  if (!m.certified) {
    EXPECT_TRUE(m.has_solution);  // roots alone yield an incumbent
    EXPECT_GE(m.gap_w, 0.0);
  }
  // Determinism holds on the big lattice too.
  FrontierOptions opt2 = opt;
  opt2.num_threads = 8;
  ExpectFrontierIdentical(fr, FrontierExplore(d, Lib(), opt2));
}

TEST(Frontier, ToExplorationResultFeedsExistingConsumers) {
  FrontierOptions opt = FastFrontier();
  const FrontierResult fr = FrontierExplore(Design22(), Lib(), opt);
  const ExplorationResult as_ex = fr.ToExplorationResult();
  ASSERT_EQ(as_ex.modes.size(), fr.modes.size());
  for (std::size_t i = 0; i < fr.modes.size(); ++i) {
    EXPECT_EQ(as_ex.modes[i].bitwidth, fr.modes[i].bitwidth);
    EXPECT_EQ(as_ex.modes[i].has_solution, fr.modes[i].has_solution);
    EXPECT_EQ(as_ex.modes[i].best.mask, fr.modes[i].best.mask);
    EXPECT_EQ(as_ex.modes[i].switched_energy_fj,
              fr.modes[i].switched_energy_fj);
  }
  EXPECT_EQ(as_ex.stats.sta_runs, fr.stats.sta_runs);
  EXPECT_EQ(as_ex.stats.store_hits, fr.stats.store_hits);
  // Mode lookup mirrors ExplorationResult::Mode.
  EXPECT_EQ(fr.Mode(4).bitwidth, 4);
}

}  // namespace
}  // namespace adq::core
