/// Regression tests for the 64-bit DomainMask migration: every mask
/// shift that was silent UB (or a silent truncation) at 31/32+
/// domains when masks were std::uint32_t. Pins the tech mask helpers
/// at their boundaries, batched-vs-scalar STA equality on 32- and
/// 33-domain grids, ExploredPoint::DomainState above bit 31, the
/// FL004 mask-width lint at >32 domains, and the activity cache's
/// full-key verification under forced digest collisions.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/explore.h"
#include "core/flow.h"
#include "lint/lint.h"
#include "sim/activity.h"
#include "sta/sta.h"
#include "tech/back_bias.h"

namespace adq {
namespace {

TEST(MaskWidth, HelpersAreDefinedAcrossTheFullWidth) {
  using tech::DomainMask;
  EXPECT_EQ(tech::FullMask(0), DomainMask{0});
  EXPECT_EQ(tech::FullMask(1), DomainMask{1});
  // The historic UB sites: (1u << 31) was implementation-defined as a
  // sign bit, (1u << 32) undefined, ((1u << 32) - 1) garbage.
  EXPECT_EQ(tech::FullMask(31), DomainMask{0x7fffffffu});
  EXPECT_EQ(tech::FullMask(32), DomainMask{0xffffffffu});
  EXPECT_EQ(tech::FullMask(33), DomainMask{0x1ffffffffull});
  EXPECT_EQ(tech::FullMask(tech::kMaxDomains), ~DomainMask{0});
  EXPECT_EQ(tech::MaskBit(31), DomainMask{1} << 31);
  EXPECT_EQ(tech::MaskBit(32), DomainMask{1} << 32);
  EXPECT_EQ(tech::MaskBit(tech::kMaxDomains - 1),
            DomainMask{0x8000000000000000ull});
  for (const int d : {0, 31, 32, 63}) {
    EXPECT_TRUE(tech::MaskHas(tech::MaskBit(d), d));
    EXPECT_FALSE(tech::MaskHas(~tech::MaskBit(d), d));
  }
}

TEST(MaskWidth, DomainStateReadsBitsAbove31) {
  core::ExploredPoint p;
  p.mask = tech::MaskBit(35);
  p.rbb_mask = tech::MaskBit(62);
  EXPECT_EQ(p.DomainState(35), tech::BiasState::kFBB);
  EXPECT_EQ(p.DomainState(62), tech::BiasState::kRBB);
  EXPECT_EQ(p.DomainState(34), tech::BiasState::kNoBB);
  EXPECT_EQ(p.DomainState(63), tech::BiasState::kNoBB);
}

const tech::CellLibrary& Lib() {
  static const tech::CellLibrary lib;
  return lib;
}

core::ImplementedDesign WideDesign(int nx, int ny) {
  core::FlowOptions fopt;
  fopt.grid = {nx, ny};
  fopt.lint = lint::LintGate::kWarn;  // wide grids trade area for it
  return core::RunImplementationFlow(gen::BuildBoothOperator(16), Lib(),
                                     fopt);
}

/// Batched STA must agree lane-for-lane with the scalar engine on
/// masks whose construction was UB at 32-bit width. The scalar path
/// goes through BiasVectorFor (per-instance states, no mask
/// arithmetic), so it is an independent oracle for the mask handling.
void CheckBatchAgainstScalar(const core::ImplementedDesign& d,
                             const std::vector<tech::DomainMask>& lanes) {
  sta::TimingAnalyzer an(d.op.nl, Lib(), d.loads);
  for (const double vdd : {1.0, 0.7}) {
    const std::vector<sta::TimingReport> got =
        an.AnalyzeBatch(vdd, d.clock_ns, lanes, d.domain_of(), nullptr);
    ASSERT_EQ(got.size(), lanes.size());
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      SCOPED_TRACE("vdd=" + std::to_string(vdd) + " lane=" +
                   std::to_string(l));
      const sta::TimingReport want = an.Analyze(
          vdd, d.clock_ns, core::BiasVectorFor(d, lanes[l]), nullptr);
      EXPECT_EQ(got[l].wns_ns, want.wns_ns);
      EXPECT_EQ(got[l].num_violations, want.num_violations);
    }
  }
}

TEST(MaskWidth, BatchMatchesScalarAt32Domains) {
  const core::ImplementedDesign d = WideDesign(8, 4);
  ASSERT_EQ(d.num_domains(), 32);
  CheckBatchAgainstScalar(
      d, {tech::DomainMask{0}, tech::FullMask(32), tech::MaskBit(31),
          tech::FullMask(32) ^ tech::MaskBit(31), tech::MaskBit(31) | 1u,
          tech::DomainMask{0xdeadbeefu} & tech::FullMask(32)});
}

TEST(MaskWidth, BatchMatchesScalarAt33Domains) {
  const core::ImplementedDesign d = WideDesign(11, 3);
  ASSERT_EQ(d.num_domains(), 33);
  CheckBatchAgainstScalar(
      d, {tech::FullMask(33), tech::MaskBit(32),
          tech::FullMask(33) ^ tech::MaskBit(32),
          tech::MaskBit(32) | tech::MaskBit(5)});
}

TEST(MaskWidth, OversizeExhaustiveSweepIsRecoverable) {
  // A full-lattice request beyond kMaxExhaustiveDomains must raise a
  // recoverable ExploreError (satellite 1: previously an abort), and
  // the same request with a restricted mask list must still work.
  const core::ImplementedDesign d = WideDesign(11, 3);
  core::ExploreOptions opt;
  opt.bitwidths = {16};
  opt.activity_cycles = 16;
  EXPECT_THROW(core::ExploreDesignSpace(d, Lib(), opt),
               core::ExploreError);
  opt.masks = {tech::DomainMask{0}, tech::FullMask(33)};
  const core::ExplorationResult r = core::ExploreDesignSpace(d, Lib(), opt);
  EXPECT_EQ(r.stats.points_considered,
            static_cast<long>(opt.vdds.size()) * 2);
}

TEST(MaskWidth, Fl004LintsMasksBeyondBit31) {
  using lint::ModeEntry;
  // 40 domains: the rule's `mask >> num_domains` shift was UB here
  // when masks were 32-bit. A mask inside the domain count is clean;
  // one referencing domain 41 fires.
  const std::vector<ModeEntry> clean = {
      {8, 0.9, tech::MaskBit(35), 0u, 1e-3}};
  const lint::LintReport ok =
      lint::LintModeTable("fx", clean, /*num_domains=*/40,
                          /*data_width=*/16);
  EXPECT_EQ(ok.errors() + ok.warnings(), 0) << ok.Render();

  const std::vector<ModeEntry> bad = {
      {8, 0.9, tech::MaskBit(41), 0u, 1e-3}};
  const lint::LintReport rep =
      lint::LintModeTable("fx", bad, /*num_domains=*/40,
                          /*data_width=*/16);
  EXPECT_GE(rep.errors() + rep.warnings(), 1) << rep.Render();
}

TEST(MaskWidth, ActivityCacheSurvivesForcedDigestCollisions) {
  // Two structurally different operators under the same name: with
  // the digest forced constant, only the full canonical structure in
  // the key keeps them apart. The old hash-only key would alias them
  // (satellite 3: collision must degrade to a miss, never to the
  // wrong profile).
  gen::Operator a = gen::BuildBoothOperator(4);
  gen::Operator b = gen::BuildArrayMultOperator(4);
  a.spec.name = b.spec.name = "collide";

  sim::ForceActivityHashCollisionsForTest(true);
  sim::ClearActivityCache();
  const sim::ActivityProfile pa = sim::ExtractActivity(a, 0, 64, 7);
  const sim::ActivityProfile pb = sim::ExtractActivity(b, 0, 64, 7);
  EXPECT_EQ(sim::GetActivityCacheStats().misses, 2u);  // no false hit
  EXPECT_EQ(sim::GetActivityCacheStats().hits, 0u);
  // Both cached entries keep serving their own operator.
  const sim::ActivityProfile pa2 = sim::ExtractActivity(a, 0, 64, 7);
  const sim::ActivityProfile pb2 = sim::ExtractActivity(b, 0, 64, 7);
  EXPECT_EQ(sim::GetActivityCacheStats().hits, 2u);
  sim::ForceActivityHashCollisionsForTest(false);
  sim::ClearActivityCache();

  const sim::ActivityProfile oa = sim::ExtractActivityScalar(a, 0, 64, 7);
  const sim::ActivityProfile ob = sim::ExtractActivityScalar(b, 0, 64, 7);
  EXPECT_EQ(pa.toggle_rate, oa.toggle_rate);
  EXPECT_EQ(pa2.toggle_rate, oa.toggle_rate);
  EXPECT_EQ(pb.toggle_rate, ob.toggle_rate);
  EXPECT_EQ(pb2.toggle_rate, ob.toggle_rate);
}

}  // namespace
}  // namespace adq
