/// Cross-validation between independent engines of the library —
/// invariants that hold only if two separately-implemented models
/// agree with each other:
///
///  * case analysis vs the logic simulator: every net the 3-valued
///    propagation proves constant must hold exactly that value in
///    cycle-accurate simulation under every conforming stimulus;
///  * activity extraction vs case analysis: proven-constant nets must
///    show zero measured toggles;
///  * STA vs netlist structure: the reported worst arrival can never
///    exceed (depth x slowest-cell delay + wire) bounds.

#include <gtest/gtest.h>

#include "core/accuracy.h"
#include "core/explore.h"
#include "gen/operator.h"
#include "netlist/case_analysis.h"
#include "netlist/topo.h"
#include "place/wirelength.h"
#include "sim/activity.h"
#include "sim/logic_sim.h"
#include "sim/stimulus.h"
#include "sta/sta.h"
#include "util/fixed_point.h"
#include "util/rng.h"

namespace adq {
namespace {

const tech::CellLibrary& Lib() {
  static const tech::CellLibrary lib;
  return lib;
}

class CaseVsSim : public ::testing::TestWithParam<int> {};

TEST_P(CaseVsSim, ProvenConstantsHoldInSimulation) {
  const int bw = GetParam();
  const gen::Operator op = gen::BuildBoothOperator(8);
  const int zeroed = core::ZeroedLsbs(op, bw);
  const netlist::CaseAnalysis ca(op.nl, core::ForcedZeros(op, bw));

  sim::LogicSim sim(op.nl);
  sim.Reset();
  util::Rng rng(bw * 131);
  // Warm up a few cycles so register state conforms to the masking,
  // then check every proven-constant net each cycle.
  for (int t = 0; t < 24; ++t) {
    const std::uint64_t a =
        util::MaskLsbs(rng.Word() & 0xFF, 8, zeroed);
    const std::uint64_t b =
        util::MaskLsbs(rng.Word() & 0xFF, 8, zeroed);
    sim.SetBus(op.nl.InputBus("a"), a);
    sim.SetBus(op.nl.InputBus("b"), b);
    sim.Tick();
    if (t < 3) continue;  // let constants propagate through registers
    for (std::uint32_t n = 0; n < op.nl.num_nets(); ++n) {
      const netlist::NetId id(n);
      const netlist::LogicV v = ca.Value(id);
      if (v == netlist::LogicV::kX) continue;
      ASSERT_EQ(sim.Value(id), v == netlist::LogicV::kOne)
          << "net " << n << " bw " << bw << " cycle " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bitwidths, CaseVsSim,
                         ::testing::Values(1, 2, 4, 6, 8));

TEST(ActivityVsCase, ConstantNetsNeverToggle) {
  const gen::Operator op = gen::BuildBoothOperator(8);
  for (const int bw : {2, 5, 8}) {
    const netlist::CaseAnalysis ca(op.nl, core::ForcedZeros(op, bw));
    const sim::ActivityProfile act = sim::ExtractActivity(
        op, core::ZeroedLsbs(op, bw), 256, 99);
    for (std::uint32_t n = 0; n < op.nl.num_nets(); ++n) {
      if (!ca.IsConstant(netlist::NetId(n))) continue;
      EXPECT_EQ(act.toggle_rate[n], 0.0) << "net " << n << " bw " << bw;
    }
  }
}

TEST(StaVsStructure, ArrivalBoundedByDepthTimesWorstCell) {
  const gen::Operator op = gen::BuildBoothOperator(8);
  const place::NetLoads loads =
      place::EstimateLoadsByFanout(op.nl, Lib());
  sta::TimingAnalyzer an(op.nl, Lib(), loads);
  const std::vector<tech::BiasState> nobb(op.nl.num_instances(),
                                          tech::BiasState::kNoBB);
  const auto rep = an.Analyze(0.6, 10.0, nobb, nullptr, true);
  // Conservative upper bound: every level costs at most the worst
  // (d0 + kd * maxload) * scale + max wire delay in the design.
  double max_cell = 0.0, max_wire = 0.0, max_load = 0.0;
  for (const double c : loads.cap_ff) max_load = std::max(max_load, c);
  for (const double w : loads.wire_delay_ns)
    max_wire = std::max(max_wire, w);
  for (int k = 0; k < tech::kNumCellKinds; ++k) {
    const auto& v = Lib().Variant(static_cast<tech::CellKind>(k),
                                  tech::DriveStrength::kX0P25);
    max_cell = std::max(max_cell, v.d0_ns + v.kd_ns_per_ff * max_load);
  }
  const double scale = Lib().DelayScale(0.6, tech::BiasState::kNoBB);
  const double bound =
      (netlist::LogicDepth(op.nl) + 2) * (max_cell * scale + max_wire);
  for (const auto& ep : rep.endpoints) {
    if (!ep.active) continue;
    EXPECT_LE(ep.arrival_ns, bound);
  }
}

TEST(ExploreVsSta, BestConfigurationsReanalyzeFeasible) {
  // Re-run STA independently on every configuration the explorer
  // declared optimal; they must all meet timing.
  core::FlowOptions fopt;
  fopt.grid = {2, 2};
  fopt.clock_ns = 0.55;
  const auto d = core::RunImplementationFlow(gen::BuildBoothOperator(8),
                                             Lib(), fopt);
  core::ExploreOptions xopt;
  xopt.bitwidths = {2, 4, 6, 8};
  xopt.activity_cycles = 128;
  const auto r = core::ExploreDesignSpace(d, Lib(), xopt);
  sta::TimingAnalyzer an(d.op.nl, Lib(), d.loads);
  for (const auto& m : r.modes) {
    if (!m.has_solution) continue;
    const netlist::CaseAnalysis ca(d.op.nl,
                                   core::ForcedZeros(d.op, m.bitwidth));
    const auto bias = core::BiasVectorFor(d, m.best.mask);
    const auto rep = an.Analyze(m.best.vdd, d.clock_ns, bias, &ca);
    EXPECT_TRUE(rep.feasible()) << "bitwidth " << m.bitwidth;
    EXPECT_NEAR(rep.wns_ns, m.best.wns_ns, 1e-12);
  }
}

}  // namespace
}  // namespace adq
