/// Tests for the sim-free static-prune stage of both exploration
/// engines and for the shared signoff lint gate:
///
///   * with a finite quality target, static_prune on/off returns
///     bit-identical mode lists — only the stats (evaluations spent)
///     differ, and the pruned run spends strictly less;
///   * surviving modes are bit-identical to an unconstrained run
///     (static pruning never perturbs what it keeps);
///   * an all-modes-pruned request completes without any sweep;
///   * a corrupt netlist is rejected by the same signoff lint gate on
///     the exhaustive and the frontier engine alike.

#include <gtest/gtest.h>

#include <limits>

#include "core/explore.h"
#include "core/flow.h"
#include "core/frontier.h"
#include "gen/operator.h"
#include "netlist/netlist.h"
#include "tech/cell_library.h"
#include "util/check.h"

namespace adq {
namespace {

const tech::CellLibrary& Lib() {
  static const tech::CellLibrary lib;
  return lib;
}

const core::ImplementedDesign& Design() {
  static const core::ImplementedDesign d = [] {
    core::FlowOptions fopt;
    fopt.grid = {2, 2};
    fopt.clock_ns = 0.55;
    return core::RunImplementationFlow(gen::BuildBoothOperator(8), Lib(),
                                       fopt);
  }();
  return d;
}

// booth8 proved bounds: b=2 -> 16128, b=4 -> 3840, b=6 -> 768,
// b=8 -> 0. A target of 1000 prunes {2, 4} and keeps {6, 8}.
constexpr double kTarget = 1000.0;

core::ExploreOptions BaseOptions() {
  core::ExploreOptions opt;
  opt.bitwidths = {2, 4, 6, 8};
  opt.activity_cycles = 128;
  return opt;
}

void ExpectModeEq(const core::ModeResult& a, const core::ModeResult& b) {
  EXPECT_EQ(a.bitwidth, b.bitwidth);
  EXPECT_EQ(a.has_solution, b.has_solution);
  EXPECT_EQ(a.statically_pruned, b.statically_pruned);
  EXPECT_EQ(a.proved_max_abs_error, b.proved_max_abs_error);
  EXPECT_EQ(a.switched_energy_fj, b.switched_energy_fj);
  EXPECT_EQ(a.best.bitwidth, b.best.bitwidth);
  EXPECT_EQ(a.best.vdd, b.best.vdd);
  EXPECT_EQ(a.best.mask, b.best.mask);
  EXPECT_EQ(a.best.rbb_mask, b.best.rbb_mask);
  EXPECT_EQ(a.best.feasible, b.best.feasible);
  EXPECT_EQ(a.best.wns_ns, b.best.wns_ns);
  EXPECT_EQ(a.best.power.dynamic_w, b.best.power.dynamic_w);
  EXPECT_EQ(a.best.power.leakage_w, b.best.power.leakage_w);
}

TEST(StaticPrune, ExhaustiveOnOffBitIdentical) {
  core::ExploreOptions on = BaseOptions();
  on.quality_max_abs_error = kTarget;
  on.static_prune = true;
  core::ExploreOptions off = on;
  off.static_prune = false;

  const core::ExplorationResult ron =
      core::ExploreDesignSpace(Design(), Lib(), on);
  const core::ExplorationResult roff =
      core::ExploreDesignSpace(Design(), Lib(), off);

  ASSERT_EQ(ron.modes.size(), 4u);
  ASSERT_EQ(roff.modes.size(), 4u);
  for (std::size_t i = 0; i < ron.modes.size(); ++i)
    ExpectModeEq(ron.modes[i], roff.modes[i]);

  // The verdicts: {2, 4} infeasible by proof, {6, 8} explored.
  EXPECT_TRUE(ron.Mode(2).statically_pruned);
  EXPECT_TRUE(ron.Mode(4).statically_pruned);
  EXPECT_FALSE(ron.Mode(6).statically_pruned);
  EXPECT_FALSE(ron.Mode(8).statically_pruned);
  EXPECT_FALSE(ron.Mode(2).has_solution);
  EXPECT_TRUE(ron.Mode(8).has_solution);
  EXPECT_DOUBLE_EQ(ron.Mode(4).proved_max_abs_error, 3840.0);
  EXPECT_DOUBLE_EQ(ron.Mode(6).proved_max_abs_error, 768.0);

  // Only the pruned run decided modes without simulation or STA.
  EXPECT_EQ(ron.stats.static_mode_prunes, 2);
  EXPECT_EQ(roff.stats.static_mode_prunes, 0);
  EXPECT_LT(ron.stats.sta_runs, roff.stats.sta_runs);
  EXPECT_LT(ron.stats.points_considered, roff.stats.points_considered);
}

TEST(StaticPrune, SurvivingModesMatchUnconstrainedRun) {
  core::ExploreOptions on = BaseOptions();
  on.quality_max_abs_error = kTarget;
  const core::ExplorationResult pruned =
      core::ExploreDesignSpace(Design(), Lib(), on);
  const core::ExplorationResult free_run =
      core::ExploreDesignSpace(Design(), Lib(), BaseOptions());

  for (int bw : {6, 8}) {
    const core::ModeResult& a = pruned.Mode(bw);
    const core::ModeResult& b = free_run.Mode(bw);
    EXPECT_EQ(a.has_solution, b.has_solution);
    EXPECT_EQ(a.switched_energy_fj, b.switched_energy_fj);
    EXPECT_EQ(a.best.vdd, b.best.vdd);
    EXPECT_EQ(a.best.mask, b.best.mask);
    EXPECT_EQ(a.best.wns_ns, b.best.wns_ns);
    EXPECT_EQ(a.best.power.dynamic_w, b.best.power.dynamic_w);
    EXPECT_EQ(a.best.power.leakage_w, b.best.power.leakage_w);
  }
  // No finite target: nothing is annotated, nothing pruned.
  EXPECT_EQ(free_run.stats.static_mode_prunes, 0);
  for (const core::ModeResult& m : free_run.modes) {
    EXPECT_FALSE(m.statically_pruned);
    EXPECT_EQ(m.proved_max_abs_error,
              std::numeric_limits<double>::infinity());
  }
}

TEST(StaticPrune, AllModesPrunedSkipsTheSweepEntirely) {
  core::ExploreOptions opt = BaseOptions();
  opt.bitwidths = {2, 4, 6};
  opt.quality_max_abs_error = 0.5;
  const core::ExplorationResult r =
      core::ExploreDesignSpace(Design(), Lib(), opt);
  ASSERT_EQ(r.modes.size(), 3u);
  for (const core::ModeResult& m : r.modes) {
    EXPECT_TRUE(m.statically_pruned);
    EXPECT_FALSE(m.has_solution);
  }
  EXPECT_EQ(r.stats.static_mode_prunes, 3);
  EXPECT_EQ(r.stats.points_considered, 0);
  EXPECT_EQ(r.stats.sta_runs, 0);
}

TEST(StaticPrune, FrontierOnOffBitIdentical) {
  core::FrontierOptions on;
  on.bitwidths = {2, 4, 6, 8};
  on.activity_cycles = 128;
  on.quality_max_abs_error = kTarget;
  on.static_prune = true;
  core::FrontierOptions off = on;
  off.static_prune = false;

  const core::FrontierResult ron =
      core::FrontierExplore(Design(), Lib(), on);
  const core::FrontierResult roff =
      core::FrontierExplore(Design(), Lib(), off);

  ASSERT_EQ(ron.modes.size(), 4u);
  ASSERT_EQ(roff.modes.size(), 4u);
  for (std::size_t i = 0; i < ron.modes.size(); ++i) {
    const core::FrontierModeResult& a = ron.modes[i];
    const core::FrontierModeResult& b = roff.modes[i];
    EXPECT_EQ(a.bitwidth, b.bitwidth);
    EXPECT_EQ(a.has_solution, b.has_solution);
    EXPECT_EQ(a.certified, b.certified);
    EXPECT_EQ(a.gap_w, b.gap_w);
    EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
    EXPECT_EQ(a.statically_pruned, b.statically_pruned);
    EXPECT_EQ(a.proved_max_abs_error, b.proved_max_abs_error);
    EXPECT_EQ(a.switched_energy_fj, b.switched_energy_fj);
    EXPECT_EQ(a.best.vdd, b.best.vdd);
    EXPECT_EQ(a.best.mask, b.best.mask);
    EXPECT_EQ(a.best.wns_ns, b.best.wns_ns);
    EXPECT_EQ(a.best.power.dynamic_w, b.best.power.dynamic_w);
    EXPECT_EQ(a.best.power.leakage_w, b.best.power.leakage_w);
  }
  // Pruned modes are certified by proof, with no search spent.
  EXPECT_TRUE(ron.Mode(2).statically_pruned);
  EXPECT_TRUE(ron.Mode(2).certified);
  EXPECT_EQ(ron.Mode(2).nodes_expanded, 0);
  EXPECT_EQ(ron.stats.static_mode_prunes, 2);
  EXPECT_EQ(roff.stats.static_mode_prunes, 0);
  EXPECT_LT(ron.stats.sta_runs, roff.stats.sta_runs);
  EXPECT_LT(ron.stats.nodes_expanded, roff.stats.nodes_expanded);

  // The adapter carries the static verdicts into the exhaustive shape.
  const core::ExplorationResult adapted = ron.ToExplorationResult();
  EXPECT_TRUE(adapted.Mode(2).statically_pruned);
  EXPECT_DOUBLE_EQ(adapted.Mode(4).proved_max_abs_error, 3840.0);
  EXPECT_EQ(adapted.stats.static_mode_prunes, 2);
}

// ---------------- signoff lint gate on both engines ----------------

core::ImplementedDesign CorruptCopy() {
  core::ImplementedDesign d = Design();
  // Second driver claims an existing net: an NL001 structural error
  // the signoff DRC must catch.
  netlist::RawAccess raw(d.op.nl);
  raw.inst(netlist::InstId(1)).out[0] = raw.inst(netlist::InstId(0)).out[0];
  return d;
}

TEST(LintGate, ExhaustiveEngineRejectsCorruptNetlist) {
  const core::ImplementedDesign bad = CorruptCopy();
  core::ExploreOptions opt = BaseOptions();
  opt.lint = lint::LintGate::kError;
  EXPECT_THROW(core::ExploreDesignSpace(bad, Lib(), opt), CheckError);
  // The gate runs before the sweep: a clean design with the gate on
  // explores normally.
  const core::ExplorationResult ok =
      core::ExploreDesignSpace(Design(), Lib(), opt);
  EXPECT_EQ(ok.modes.size(), 4u);
}

TEST(LintGate, FrontierEngineRejectsCorruptNetlistIdentically) {
  const core::ImplementedDesign bad = CorruptCopy();
  core::FrontierOptions opt;
  opt.bitwidths = {8};
  opt.activity_cycles = 128;
  opt.lint = lint::LintGate::kError;
  EXPECT_THROW(core::FrontierExplore(bad, Lib(), opt), CheckError);
  // kOff preserves historical behavior (no gate, no throw) — probed
  // on the clean design only; never sweep a corrupt netlist.
  core::FrontierOptions off = opt;
  off.lint = lint::LintGate::kOff;
  const core::FrontierResult ok =
      core::FrontierExplore(Design(), Lib(), off);
  EXPECT_EQ(ok.modes.size(), 1u);
}

}  // namespace
}  // namespace adq
