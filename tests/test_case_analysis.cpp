/// Tests for three-valued constant propagation (STA case analysis) —
/// the machinery that detects the paper's "disabled paths" (Fig. 2
/// set (1)) when input LSBs are clamped.

#include <gtest/gtest.h>

#include "netlist/case_analysis.h"
#include "netlist/netlist.h"

namespace adq::netlist {
namespace {

using tech::CellKind;
using tech::DriveStrength;

TEST(Evaluate3, MatchesExhaustiveEnumeration) {
  // For every kind and every 3-valued input assignment, Evaluate3 must
  // equal the agreement of all boolean completions.
  for (int k = 0; k < tech::kNumCellKinds; ++k) {
    const auto kind = static_cast<CellKind>(k);
    const int n_in = tech::NumInputs(kind);
    const int n_out = tech::NumOutputs(kind);
    int assign[3] = {0, 0, 0};
    const int total = 1 * (n_in >= 1 ? 3 : 1) * (n_in >= 2 ? 3 : 1) *
                      (n_in >= 3 ? 3 : 1);
    for (int t = 0; t < total; ++t) {
      int rem = t;
      LogicV in3[3];
      for (int i = 0; i < n_in; ++i) {
        assign[i] = rem % 3;
        rem /= 3;
        in3[i] = static_cast<LogicV>(assign[i]);
      }
      LogicV out3[2];
      Evaluate3(kind, in3, out3);

      // Reference: enumerate completions.
      bool first = true;
      bool ref[2] = {false, false};
      bool agree[2] = {true, true};
      int x_pos[3], n_x = 0;
      bool base[3] = {false, false, false};
      for (int i = 0; i < n_in; ++i) {
        if (in3[i] == LogicV::kX)
          x_pos[n_x++] = i;
        else
          base[i] = in3[i] == LogicV::kOne;
      }
      for (unsigned m = 0; m < (1u << n_x); ++m) {
        bool ins[3] = {base[0], base[1], base[2]};
        for (int j = 0; j < n_x; ++j) ins[x_pos[j]] = (m >> j) & 1;
        bool o[2];
        tech::Evaluate(kind, ins, o);
        for (int q = 0; q < n_out; ++q) {
          if (first)
            ref[q] = o[q];
          else if (o[q] != ref[q])
            agree[q] = false;
        }
        first = false;
      }
      for (int q = 0; q < n_out; ++q) {
        const LogicV expect =
            agree[q] ? FromBool(ref[q]) : LogicV::kX;
        EXPECT_EQ(out3[q], expect)
            << tech::ToString(kind) << " inputs " << assign[0] << ","
            << assign[1] << "," << assign[2] << " out " << q;
      }
    }
  }
}

TEST(CaseAnalysis, ControllingConstantPropagates) {
  Netlist nl;
  const NetId a = nl.AddInputPort("a");
  const NetId b = nl.AddInputPort("b");
  const NetId y = nl.AddGate(CellKind::kAnd2, {a, b});
  nl.AddOutputPort("y", y);
  // a = 0 controls the AND regardless of b.
  const CaseAnalysis ca(nl, {{a, false}});
  EXPECT_EQ(ca.Value(y), LogicV::kZero);
  EXPECT_FALSE(ca.IsConstant(b));
}

TEST(CaseAnalysis, NonControllingConstantDoesNot) {
  Netlist nl;
  const NetId a = nl.AddInputPort("a");
  const NetId b = nl.AddInputPort("b");
  const NetId y = nl.AddGate(CellKind::kAnd2, {a, b});
  nl.AddOutputPort("y", y);
  const CaseAnalysis ca(nl, {{a, true}});  // AND with 1: transparent
  EXPECT_EQ(ca.Value(y), LogicV::kX);
}

TEST(CaseAnalysis, TieCellsAreConstant) {
  Netlist nl;
  const NetId zero = nl.ConstNet(false);
  const NetId one = nl.ConstNet(true);
  const NetId y = nl.AddGate(CellKind::kXor2, {zero, one});
  nl.AddOutputPort("y", y);
  const CaseAnalysis ca(nl, {});
  EXPECT_EQ(ca.Value(zero), LogicV::kZero);
  EXPECT_EQ(ca.Value(one), LogicV::kOne);
  EXPECT_EQ(ca.Value(y), LogicV::kOne);
}

TEST(CaseAnalysis, PropagatesThroughRegisters) {
  Netlist nl;
  const NetId a = nl.AddInputPort("a");
  const NetId q = nl.AddGate(CellKind::kDff, {a});
  const NetId y = nl.AddGate(CellKind::kInv, {q});
  nl.AddOutputPort("y", y);
  const CaseAnalysis ca(nl, {{a, false}});
  EXPECT_EQ(ca.Value(q), LogicV::kZero);
  EXPECT_EQ(ca.Value(y), LogicV::kOne);
}

TEST(CaseAnalysis, AccumulatorFeedbackStaysUnknown) {
  // acc <= acc + in with in = 0: the register output is NOT provably
  // constant (it holds whatever it held), so timing through the
  // accumulator must stay active — the conservative answer.
  Netlist nl;
  const NetId in = nl.AddInputPort("in");
  const NetId q = nl.NewNet();
  const NetId d = nl.AddGate(CellKind::kXor2, {q, in});
  nl.AddCellWithOutputs(CellKind::kDff, DriveStrength::kX1, {d}, {q});
  nl.AddOutputPort("y", q);
  const CaseAnalysis ca(nl, {{in, false}});
  EXPECT_EQ(ca.Value(q), LogicV::kX);
  EXPECT_EQ(ca.Value(d), LogicV::kX);
}

TEST(CaseAnalysis, RegisterChainOfConstants) {
  Netlist nl;
  const NetId a = nl.AddInputPort("a");
  NetId n = a;
  for (int i = 0; i < 5; ++i) n = nl.AddGate(CellKind::kDff, {n});
  nl.AddOutputPort("y", n);
  const CaseAnalysis ca(nl, {{a, true}});
  EXPECT_EQ(ca.Value(n), LogicV::kOne) << "constant must cross 5 registers";
}

TEST(CaseAnalysis, NumConstantCountsForcedAndDerived) {
  Netlist nl;
  const NetId a = nl.AddInputPort("a");
  const NetId b = nl.AddInputPort("b");
  const NetId y = nl.AddGate(CellKind::kOr2, {a, b});
  nl.AddOutputPort("y", y);
  const CaseAnalysis ca(nl, {{a, true}});  // OR with 1 -> y = 1
  EXPECT_EQ(ca.num_constant(), 2u);        // a and y
}

TEST(CaseAnalysis, OnlyPortsMayBeForced) {
  Netlist nl;
  const NetId a = nl.AddInputPort("a");
  const NetId y = nl.AddGate(CellKind::kBuf, {a});
  nl.AddOutputPort("y", y);
  EXPECT_THROW(CaseAnalysis(nl, {{y, false}}), CheckError);
}

TEST(CaseAnalysis, XorChainKillsExactlyForcedCone) {
  // y = (a ^ b) ^ c with a,b forced: a^b constant, but y still X.
  Netlist nl;
  const NetId a = nl.AddInputPort("a");
  const NetId b = nl.AddInputPort("b");
  const NetId c = nl.AddInputPort("c");
  const NetId ab = nl.AddGate(CellKind::kXor2, {a, b});
  const NetId y = nl.AddGate(CellKind::kXor2, {ab, c});
  nl.AddOutputPort("y", y);
  const CaseAnalysis ca(nl, {{a, false}, {b, true}});
  EXPECT_EQ(ca.Value(ab), LogicV::kOne);
  EXPECT_EQ(ca.Value(y), LogicV::kX);
}

}  // namespace
}  // namespace adq::netlist
