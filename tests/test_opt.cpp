/// Tests for the sizing optimizer (timing fix + power recovery /
/// wall-of-slack) and the high-fanout buffering pass.

#include <gtest/gtest.h>

#include "gen/operator.h"
#include "opt/buffering.h"
#include "opt/sizing.h"
#include "sim/logic_sim.h"
#include "sta/slack_histogram.h"
#include "sta/sta.h"
#include "util/fixed_point.h"
#include "util/rng.h"

namespace adq::opt {
namespace {

using tech::BiasState;

const tech::CellLibrary& Lib() {
  static const tech::CellLibrary lib;
  return lib;
}

place::NetLoads FanoutLoads(const netlist::Netlist& nl) {
  return place::EstimateLoadsByFanout(nl, Lib());
}

TEST(Sizing, MeetsAchievableClock) {
  gen::Operator op = gen::BuildBoothOperator(8);
  SizingOptions sopt;
  sopt.clock_ns = 0.8;  // generous for an 8x8 multiplier
  const SizingResult res =
      OptimizeSizing(op.nl, Lib(), FanoutLoads, sopt);
  EXPECT_TRUE(res.timing_met);
  EXPECT_GE(res.wns_ns, 0.0);
}

TEST(Sizing, ReportsFailureOnImpossibleClock) {
  gen::Operator op = gen::BuildBoothOperator(8);
  SizingOptions sopt;
  sopt.clock_ns = 0.05;  // unreachable
  const SizingResult res =
      OptimizeSizing(op.nl, Lib(), FanoutLoads, sopt);
  EXPECT_FALSE(res.timing_met);
  EXPECT_LT(res.wns_ns, 0.0);
}

TEST(Sizing, RecoveryNeverBreaksTiming) {
  gen::Operator op = gen::BuildBoothOperator(8);
  SizingOptions sopt;
  sopt.clock_ns = 0.9;
  sopt.enable_recovery = true;
  const SizingResult res =
      OptimizeSizing(op.nl, Lib(), FanoutLoads, sopt);
  EXPECT_TRUE(res.timing_met);
  EXPECT_GT(res.downsize_moves, 0) << "ample slack must trigger recovery";
}

TEST(Sizing, RecoveryReducesAreaAndLeakage) {
  gen::Operator op_a = gen::BuildBoothOperator(8);
  gen::Operator op_b = gen::BuildBoothOperator(8);
  SizingOptions no_rec;
  no_rec.clock_ns = 1.0;
  no_rec.enable_recovery = false;
  SizingOptions rec = no_rec;
  rec.enable_recovery = true;
  OptimizeSizing(op_a.nl, Lib(), FanoutLoads, no_rec);
  OptimizeSizing(op_b.nl, Lib(), FanoutLoads, rec);
  auto area = [](const netlist::Netlist& nl) {
    double a = 0.0;
    for (const auto& inst : nl.instances())
      a += Lib().AreaUm2(inst.kind, inst.drive);
    return a;
  };
  EXPECT_LT(area(op_b.nl), area(op_a.nl));
}

TEST(Sizing, RecoveryNarrowsSlackDistribution) {
  // The wall of slack: after power recovery the mean endpoint slack
  // must drop (non-critical paths slowed toward the critical one).
  gen::Operator op_a = gen::BuildBoothOperator(16);
  gen::Operator op_b = gen::BuildBoothOperator(16);
  SizingOptions no_rec;
  no_rec.clock_ns = 0.9;
  no_rec.enable_recovery = false;
  SizingOptions rec = no_rec;
  rec.enable_recovery = true;
  OptimizeSizing(op_a.nl, Lib(), FanoutLoads, no_rec);
  OptimizeSizing(op_b.nl, Lib(), FanoutLoads, rec);
  auto mean_slack = [&](const netlist::Netlist& nl) {
    sta::TimingAnalyzer an(nl, Lib(), FanoutLoads(nl));
    const std::vector<BiasState> fbb(nl.num_instances(), BiasState::kFBB);
    const auto rep = an.Analyze(1.0, 0.9, fbb, nullptr, true);
    double sum = 0.0;
    int n = 0;
    for (const auto& ep : rep.endpoints)
      if (ep.active) {
        sum += ep.slack_ns;
        ++n;
      }
    return sum / n;
  };
  EXPECT_LT(mean_slack(op_b.nl), mean_slack(op_a.nl));
}

TEST(Buffering, EnforcesMaxFanout) {
  gen::Operator op = gen::BuildBoothOperator(16);
  const BufferingResult res = BufferHighFanout(op.nl, 8);
  EXPECT_GT(res.buffers_inserted, 0);
  for (std::uint32_t n = 0; n < op.nl.num_nets(); ++n) {
    const auto& net = op.nl.net(netlist::NetId(n));
    if (net.driver.valid() &&
        tech::IsTie(op.nl.inst(net.driver.inst).kind))
      continue;  // constants exempt
    EXPECT_LE(net.sinks.size(), 8u) << "net " << n;
  }
  EXPECT_NO_THROW(op.nl.Validate());
}

TEST(Buffering, PreservesFunction) {
  gen::Operator ref = gen::BuildBoothOperator(8);
  gen::Operator buf = gen::BuildBoothOperator(8);
  BufferHighFanout(buf.nl, 4);
  sim::LogicSim sr(ref.nl), sb(buf.nl);
  util::Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    const std::int64_t a = rng.UniformInt(-128, 127);
    const std::int64_t b = rng.UniformInt(-128, 127);
    for (auto* s : {&sr, &sb}) {
      const netlist::Netlist& nl = (s == &sr) ? ref.nl : buf.nl;
      s->SetBus(nl.InputBus("a"), util::FromSigned(a, 8));
      s->SetBus(nl.InputBus("b"), util::FromSigned(b, 8));
      s->Tick();
      s->Tick();
    }
    ASSERT_EQ(sr.ReadBus(ref.nl.OutputBus("p")),
              sb.ReadBus(buf.nl.OutputBus("p")));
  }
}

TEST(Buffering, IdempotentOnBoundedNetlist) {
  gen::Operator op = gen::BuildBoothOperator(8);
  BufferHighFanout(op.nl, 8);
  const BufferingResult again = BufferHighFanout(op.nl, 8);
  EXPECT_EQ(again.buffers_inserted, 0);
}

TEST(Buffering, RejectsDegenerateLimit) {
  gen::Operator op = gen::BuildBoothOperator(8);
  EXPECT_THROW(BufferHighFanout(op.nl, 1), CheckError);
}

}  // namespace
}  // namespace adq::opt
