/// Contracts of the batched multi-mask STA kernel
/// (sta::TimingAnalyzer::AnalyzeBatch) and the monotonicity law the
/// exploration engine's mask-dominance prune is built on:
///
///   * every batch lane is bit-identical (==, not nearly-equal) to a
///     scalar Analyze of the same mask — sampled across random
///     (VDD, mask set, bitwidth, batch width) draws;
///   * WNS is monotone non-increasing in the FBB mask lattice:
///     M ⊆ F implies WNS(M) ≤ WNS(F), hence an infeasible mask
///     condemns all its submasks (the prune is exact, not heuristic).

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/accuracy.h"
#include "core/explore.h"
#include "core/flow.h"
#include "sta/sta.h"

namespace adq {
namespace {

const tech::CellLibrary& Lib() {
  static const tech::CellLibrary lib;
  return lib;
}

/// Same fixture as test_explore_golden: width-8 Booth, 2x2 grid
/// (4 bias domains), 0.55 ns clock.
const core::ImplementedDesign& Design() {
  static const core::ImplementedDesign d = [] {
    core::FlowOptions fopt;
    fopt.grid = {2, 2};
    fopt.clock_ns = 0.55;
    return core::RunImplementationFlow(gen::BuildBoothOperator(8), Lib(),
                                       fopt);
  }();
  return d;
}

void ExpectReportsIdentical(const sta::TimingReport& batch,
                            const sta::TimingReport& scalar) {
  EXPECT_EQ(batch.wns_ns, scalar.wns_ns);  // bit-identical, == compare
  EXPECT_EQ(batch.num_violations, scalar.num_violations);
  EXPECT_EQ(batch.num_active_endpoints, scalar.num_active_endpoints);
  EXPECT_EQ(batch.num_disabled_endpoints, scalar.num_disabled_endpoints);
}

TEST(StaBatch, BitIdenticalToScalarLanes) {
  const core::ImplementedDesign& d = Design();
  sta::TimingAnalyzer analyzer(d.op.nl, Lib(), d.loads);
  const std::uint32_t nmasks = 1u << d.num_domains();

  std::mt19937 rng(20260805);
  std::uniform_real_distribution<double> vdd_dist(0.6, 1.0);
  std::uniform_int_distribution<std::uint32_t> mask_dist(0, nmasks - 1);
  std::uniform_int_distribution<int> bw_dist(1, d.op.spec.data_width);
  std::uniform_int_distribution<int> width_dist(1, 11);

  for (int trial = 0; trial < 24; ++trial) {
    const double vdd = vdd_dist(rng);
    const int bw = bw_dist(rng);
    // Every third trial analyzes the full circuit (no case analysis).
    const bool use_ca = trial % 3 != 0;
    const netlist::CaseAnalysis ca(d.op.nl, core::ForcedZeros(d.op, bw));
    const netlist::CaseAnalysis* cap = use_ca ? &ca : nullptr;

    std::vector<tech::DomainMask> lanes(
        static_cast<std::size_t>(width_dist(rng)));
    for (tech::DomainMask& m : lanes) m = mask_dist(rng);

    SCOPED_TRACE("trial=" + std::to_string(trial) +
                 " vdd=" + std::to_string(vdd) + " bw=" +
                 std::to_string(bw) + " W=" + std::to_string(lanes.size()));
    const std::vector<sta::TimingReport> batch =
        analyzer.AnalyzeBatch(vdd, d.clock_ns, lanes, d.domain_of(), cap);
    ASSERT_EQ(batch.size(), lanes.size());
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      SCOPED_TRACE("lane=" + std::to_string(l) + " mask=" +
                   std::to_string(lanes[l]));
      const sta::TimingReport scalar = analyzer.Analyze(
          vdd, d.clock_ns, core::BiasVectorFor(d, lanes[l]), cap);
      ExpectReportsIdentical(batch[l], scalar);
    }
  }
}

TEST(StaBatch, EmptyAndSingleLane) {
  const core::ImplementedDesign& d = Design();
  sta::TimingAnalyzer analyzer(d.op.nl, Lib(), d.loads);
  EXPECT_TRUE(analyzer
                  .AnalyzeBatch(1.0, d.clock_ns, {}, d.domain_of())
                  .empty());
  // W = 1 is the degenerate batch the explorer issues for leftover
  // chunks; it must match scalar like any other width.
  const std::uint32_t mask = 0x5;
  const std::vector<tech::DomainMask> one{mask};
  const std::vector<sta::TimingReport> batch =
      analyzer.AnalyzeBatch(0.8, d.clock_ns, one, d.domain_of());
  ASSERT_EQ(batch.size(), 1u);
  ExpectReportsIdentical(
      batch[0],
      analyzer.Analyze(0.8, d.clock_ns, core::BiasVectorFor(d, mask)));
}

/// The law behind ExploreOptions::mask_pruning: forward body bias
/// only speeds cells up, so clearing FBB bits can only worsen WNS.
TEST(StaBatch, WnsMonotoneNonIncreasingInMaskLattice) {
  const core::ImplementedDesign& d = Design();
  sta::TimingAnalyzer analyzer(d.op.nl, Lib(), d.loads);
  const std::uint32_t nmasks = 1u << d.num_domains();

  std::mt19937 rng(987654321);
  std::uniform_real_distribution<double> vdd_dist(0.6, 1.0);
  std::uniform_int_distribution<std::uint32_t> mask_dist(0, nmasks - 1);
  std::uniform_int_distribution<int> bw_dist(1, d.op.spec.data_width);

  for (int trial = 0; trial < 48; ++trial) {
    const double vdd = vdd_dist(rng);
    const int bw = bw_dist(rng);
    const netlist::CaseAnalysis ca(d.op.nl, core::ForcedZeros(d.op, bw));
    const std::uint32_t sup = mask_dist(rng);
    const std::uint32_t sub = sup & mask_dist(rng);  // sub ⊆ sup

    SCOPED_TRACE("trial=" + std::to_string(trial) + " sup=" +
                 std::to_string(sup) + " sub=" + std::to_string(sub));
    const sta::TimingReport rep_sup = analyzer.Analyze(
        vdd, d.clock_ns, core::BiasVectorFor(d, sup), &ca);
    const sta::TimingReport rep_sub = analyzer.Analyze(
        vdd, d.clock_ns, core::BiasVectorFor(d, sub), &ca);
    EXPECT_LE(rep_sub.wns_ns, rep_sup.wns_ns);
    // The corollary the explorer's dominance prune relies on: an
    // infeasible supermask condemns every submask.
    if (!rep_sup.feasible()) EXPECT_FALSE(rep_sub.feasible());
  }
}

/// Full-lattice version at one operating point: all-FBB is the global
/// WNS maximum and all-NoBB the minimum.
TEST(StaBatch, LatticeExtremesBoundEveryMask) {
  const core::ImplementedDesign& d = Design();
  sta::TimingAnalyzer analyzer(d.op.nl, Lib(), d.loads);
  const std::uint32_t nmasks = 1u << d.num_domains();
  const double vdd = 0.8;

  std::vector<tech::DomainMask> lanes(nmasks);
  for (std::uint32_t m = 0; m < nmasks; ++m) lanes[m] = m;
  const std::vector<sta::TimingReport> reps =
      analyzer.AnalyzeBatch(vdd, d.clock_ns, lanes, d.domain_of());
  const double wns_none = reps[0].wns_ns;
  const double wns_all = reps[nmasks - 1].wns_ns;
  for (std::uint32_t m = 0; m < nmasks; ++m) {
    EXPECT_GE(reps[m].wns_ns, wns_none) << "mask " << m;
    EXPECT_LE(reps[m].wns_ns, wns_all) << "mask " << m;
  }
}

}  // namespace
}  // namespace adq
