/// Tests for the bench-history regression gate (src/obs/benchgate):
/// pinned-series extraction from BENCH_*.json documents, JSONL
/// round-tripping, and the median/MAD gate semantics benchdiff builds
/// on — pass on an unchanged rerun, fail naming the series on a 2x
/// slowdown, refuse dirty baselines, advise (not fail) on thin
/// history.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/benchgate.h"
#include "util/json.h"

namespace adq::obs {
namespace {

BenchRun MakeRun(const std::string& bench, const std::string& build,
                 const std::string& host, double scalar, double speedup) {
  BenchRun r;
  r.schema_version = 2;
  r.bench = bench;
  r.build = build;
  r.ts_utc = "2026-08-08T00:00:00Z";
  r.host = host;
  r.hardware_threads = 8;
  r.series["scalar_masks_per_sec"] = scalar;
  r.series["incremental_speedup_w16"] = speedup;
  return r;
}

TEST(BenchGate, ExtractsPinnedSeriesFromBenchDocument) {
  const std::string body = R"({
    "schema_version": 2, "bench": "sta_batch", "build": "abc123",
    "ts_utc": "2026-08-08T01:02:03Z", "host": "box", "hardware_threads": 16,
    "scalar_masks_per_sec": 1500.5, "incremental_speedup_w16": 6.25,
    "widths": [{"width": 4, "masks_per_sec": 3000.0},
               {"width": 16, "masks_per_sec": 9000.0}]})";
  std::string err;
  const util::Json doc = util::Json::Parse(body, &err);
  ASSERT_TRUE(err.empty()) << err;
  BenchRun run;
  ASSERT_TRUE(ExtractBenchRun(doc, &run, &err)) << err;
  EXPECT_EQ(run.schema_version, 2);
  EXPECT_EQ(run.bench, "sta_batch");
  EXPECT_EQ(run.build, "abc123");
  EXPECT_EQ(run.host, "box");
  EXPECT_EQ(run.hardware_threads, 16);
  EXPECT_DOUBLE_EQ(run.series.at("scalar_masks_per_sec"), 1500.5);
  EXPECT_DOUBLE_EQ(run.series.at("incremental_speedup_w16"), 6.25);
  // batch_masks_per_sec = max over the width sweep.
  EXPECT_DOUBLE_EQ(run.series.at("batch_masks_per_sec"), 9000.0);
}

TEST(BenchGate, UnknownBenchYieldsEmptySeriesNotError) {
  std::string err;
  const util::Json doc =
      util::Json::Parse(R"({"bench": "brand_new_bench"})", &err);
  BenchRun run;
  ASSERT_TRUE(ExtractBenchRun(doc, &run, &err)) << err;
  EXPECT_TRUE(run.series.empty());
}

TEST(BenchGate, NonBenchDocumentIsRejected) {
  std::string err;
  const util::Json doc = util::Json::Parse(R"({"foo": 1})", &err);
  BenchRun run;
  EXPECT_FALSE(ExtractBenchRun(doc, &run, &err));
  EXPECT_FALSE(err.empty());
}

TEST(BenchGate, HistoryRowRoundTrips) {
  const BenchRun run = MakeRun("sta_batch", "abc123", "box", 1000.0, 5.0);
  const std::string line = RunToJsonLine(run);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_TRUE(util::Json::Valid(line)) << line;
  BenchRun back;
  std::string err;
  ASSERT_TRUE(ParseHistoryLine(line, &back, &err)) << err;
  EXPECT_EQ(back.bench, run.bench);
  EXPECT_EQ(back.build, run.build);
  EXPECT_EQ(back.ts_utc, run.ts_utc);
  EXPECT_EQ(back.host, run.host);
  EXPECT_EQ(back.hardware_threads, run.hardware_threads);
  EXPECT_EQ(back.series, run.series);
}

TEST(BenchGate, LoadHistorySkipsBlankAndCollectsBadLines) {
  const std::string body =
      RunToJsonLine(MakeRun("sta_batch", "a1", "box", 1.0, 1.0)) +
      "\n\n   \nnot json at all\n" +
      RunToJsonLine(MakeRun("sta_batch", "a2", "box", 2.0, 2.0)) + "\n";
  std::vector<std::string> errs;
  const std::vector<BenchRun> hist = LoadHistory(body, &errs);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0].build, "a1");
  EXPECT_EQ(hist[1].build, "a2");
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("line 4"), std::string::npos) << errs[0];
}

TEST(BenchGate, MedianAndMad) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Mad({1.0, 1.0, 1.0}, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Mad({1.0, 2.0, 9.0}, 2.0), 1.0);
}

TEST(BenchGate, PassesOnUnchangedRerun) {
  std::vector<BenchRun> hist;
  for (int i = 0; i < 5; ++i)
    hist.push_back(MakeRun("sta_batch", "a1", "box", 1000.0, 5.0));
  const BenchRun fresh = MakeRun("sta_batch", "a2", "box", 1000.0, 5.0);
  const auto verdicts = GateRun(fresh, hist, GateOptions{});
  ASSERT_EQ(verdicts.size(), 2u);
  for (const auto& v : verdicts) {
    EXPECT_FALSE(v.regressed) << v.series;
    EXPECT_FALSE(v.advisory) << v.series;
    EXPECT_EQ(v.baseline_n, 5) << v.series;
  }
  EXPECT_FALSE(AnyRegression(verdicts));
}

TEST(BenchGate, FailsNamingSeriesOnTwoXSlowdown) {
  std::vector<BenchRun> hist;
  for (int i = 0; i < 5; ++i)
    hist.push_back(MakeRun("sta_batch", "a1", "box", 1000.0, 5.0));
  // scalar halves, speedup holds.
  const BenchRun fresh = MakeRun("sta_batch", "a2", "box", 500.0, 5.0);
  const auto verdicts = GateRun(fresh, hist, GateOptions{});
  bool scalar_flagged = false;
  for (const auto& v : verdicts) {
    if (v.series == "scalar_masks_per_sec") {
      EXPECT_TRUE(v.regressed);
      scalar_flagged = true;
    } else {
      EXPECT_FALSE(v.regressed) << v.series;
    }
  }
  EXPECT_TRUE(scalar_flagged);
  EXPECT_TRUE(AnyRegression(verdicts));
}

TEST(BenchGate, NoiseBandTracksBaselineSpread) {
  // Noisy baseline: the MAD term must widen the band beyond the 10%
  // relative floor so in-family jitter passes.
  std::vector<BenchRun> hist;
  const double vals[6] = {900, 1100, 950, 1050, 1000, 980};
  for (const double v : vals)
    hist.push_back(MakeRun("sta_batch", "a1", "box", v, 5.0));
  const BenchRun fresh = MakeRun("sta_batch", "a2", "box", 820.0, 5.0);
  const auto verdicts = GateRun(fresh, hist, GateOptions{});
  for (const auto& v : verdicts) {
    if (v.series == "scalar_masks_per_sec") {
      EXPECT_FALSE(v.regressed);
    }
  }
}

TEST(BenchGate, DirtyBaselinesAreRefused) {
  EXPECT_TRUE(IsDirtyBuildId("abc-dirty"));
  EXPECT_TRUE(IsDirtyBuildId("unknown"));
  EXPECT_TRUE(IsDirtyBuildId(""));
  EXPECT_FALSE(IsDirtyBuildId("abc123"));
  std::vector<BenchRun> hist;
  for (int i = 0; i < 5; ++i)
    hist.push_back(MakeRun("sta_batch", "a1-dirty", "box", 1000.0, 5.0));
  const BenchRun fresh = MakeRun("sta_batch", "a2", "box", 500.0, 5.0);
  // All history dirty -> no comparable baseline -> advisory, not fail.
  const auto verdicts = GateRun(fresh, hist, GateOptions{});
  for (const auto& v : verdicts) {
    EXPECT_TRUE(v.advisory) << v.series;
    EXPECT_EQ(v.baseline_n, 0) << v.series;
  }
  EXPECT_FALSE(AnyRegression(verdicts));
  // Opting in to dirty baselines re-arms the gate.
  GateOptions opt;
  opt.allow_dirty = true;
  EXPECT_TRUE(AnyRegression(GateRun(fresh, hist, opt)));
}

TEST(BenchGate, OtherHostsDoNotCount) {
  std::vector<BenchRun> hist;
  for (int i = 0; i < 5; ++i)
    hist.push_back(MakeRun("sta_batch", "a1", "fast-box", 9999.0, 5.0));
  const BenchRun fresh = MakeRun("sta_batch", "a2", "slow-box", 500.0, 5.0);
  const auto verdicts = GateRun(fresh, hist, GateOptions{});
  for (const auto& v : verdicts) EXPECT_TRUE(v.advisory) << v.series;
  EXPECT_FALSE(AnyRegression(verdicts));
  GateOptions opt;
  opt.same_host_only = false;
  EXPECT_TRUE(AnyRegression(GateRun(fresh, hist, opt)));
}

TEST(BenchGate, WindowKeepsOnlyNewestRows) {
  std::vector<BenchRun> hist;
  // 10 slow ancient rows, then 8 fast recent ones: with window=8 the
  // baseline is all-fast, so a slow fresh run must regress.
  for (int i = 0; i < 10; ++i)
    hist.push_back(MakeRun("sta_batch", "old", "box", 100.0, 5.0));
  for (int i = 0; i < 8; ++i)
    hist.push_back(MakeRun("sta_batch", "new", "box", 1000.0, 5.0));
  const BenchRun fresh = MakeRun("sta_batch", "f", "box", 100.0, 5.0);
  const auto verdicts = GateRun(fresh, hist, GateOptions{});
  bool flagged = false;
  for (const auto& v : verdicts)
    if (v.series == "scalar_masks_per_sec") {
      EXPECT_EQ(v.baseline_n, 8);
      EXPECT_DOUBLE_EQ(v.median, 1000.0);
      flagged = v.regressed;
    }
  EXPECT_TRUE(flagged);
}

TEST(BenchGate, ThinHistoryIsAdvisory) {
  std::vector<BenchRun> hist;
  hist.push_back(MakeRun("sta_batch", "a1", "box", 1000.0, 5.0));
  hist.push_back(MakeRun("sta_batch", "a2", "box", 1000.0, 5.0));
  const BenchRun fresh = MakeRun("sta_batch", "a3", "box", 1.0, 5.0);
  const auto verdicts = GateRun(fresh, hist, GateOptions{});  // min 3
  for (const auto& v : verdicts) {
    EXPECT_TRUE(v.advisory) << v.series;
    EXPECT_EQ(v.baseline_n, 2) << v.series;
  }
  EXPECT_FALSE(AnyRegression(verdicts));
}

TEST(BenchGate, SimdBackendAndAdaptiveSeriesAreExtracted) {
  const std::string body = R"({
    "schema_version": 2, "bench": "sta_batch", "build": "abc123",
    "ts_utc": "2026-08-09T01:02:03Z", "host": "box", "hardware_threads": 16,
    "simd_backend": "avx2", "simd_masks_per_sec": 650000.0,
    "adaptive_speedup_gray_sweep": 1.1,
    "adaptive_speedup_neighborhood": 1.05,
    "adaptive_speedup_mode_walk": 2.3})";
  std::string err;
  const util::Json doc = util::Json::Parse(body, &err);
  ASSERT_TRUE(err.empty()) << err;
  BenchRun run;
  ASSERT_TRUE(ExtractBenchRun(doc, &run, &err)) << err;
  EXPECT_EQ(run.simd_backend, "avx2");
  EXPECT_DOUBLE_EQ(run.series.at("simd_masks_per_sec"), 650000.0);
  EXPECT_DOUBLE_EQ(run.series.at("adaptive_speedup_gray_sweep"), 1.1);
  EXPECT_DOUBLE_EQ(run.series.at("adaptive_speedup_neighborhood"), 1.05);
  EXPECT_DOUBLE_EQ(run.series.at("adaptive_speedup_mode_walk"), 2.3);
}

TEST(BenchGate, SimdBackendRoundTripsAndLegacyRowsStayByteStable) {
  // Tagged rows round-trip the backend; untagged rows must not grow a
  // key (the history file is append-only and diffed byte-for-byte).
  BenchRun tagged = MakeRun("sta_batch", "abc123", "box", 1000.0, 5.0);
  tagged.simd_backend = "avx2";
  const std::string line = RunToJsonLine(tagged);
  EXPECT_NE(line.find("\"simd_backend\": \"avx2\""), std::string::npos)
      << line;
  BenchRun back;
  std::string err;
  ASSERT_TRUE(ParseHistoryLine(line, &back, &err)) << err;
  EXPECT_EQ(back.simd_backend, "avx2");

  const BenchRun legacy = MakeRun("sta_batch", "abc123", "box", 1000.0, 5.0);
  const std::string legacy_line = RunToJsonLine(legacy);
  EXPECT_EQ(legacy_line.find("simd_backend"), std::string::npos)
      << legacy_line;
  ASSERT_TRUE(ParseHistoryLine(legacy_line, &back, &err)) << err;
  EXPECT_EQ(back.simd_backend, "");
}

TEST(BenchGate, BackendMismatchedBaselinesDoNotCount) {
  // A scalar-fallback history must not gate an AVX2 run (or vice
  // versa), and untagged pre-SIMD rows must not gate any tagged run:
  // each backend tag starts its own baseline.
  std::vector<BenchRun> hist;
  for (int i = 0; i < 3; ++i)
    hist.push_back(MakeRun("sta_batch", "a1", "box", 9000.0, 5.0));
  for (int i = 0; i < 3; ++i) {
    hist.push_back(MakeRun("sta_batch", "a2", "box", 8000.0, 5.0));
    hist.back().simd_backend = "scalar";
  }
  BenchRun fresh = MakeRun("sta_batch", "f", "box", 500.0, 5.0);
  fresh.simd_backend = "avx2";
  const auto verdicts = GateRun(fresh, hist, GateOptions{});
  for (const auto& v : verdicts) {
    EXPECT_TRUE(v.advisory) << v.series;
    EXPECT_EQ(v.baseline_n, 0) << v.series;
  }
  EXPECT_FALSE(AnyRegression(verdicts));

  // Rows with the matching tag re-arm the gate for that backend...
  for (int i = 0; i < 3; ++i) {
    hist.push_back(MakeRun("sta_batch", "a3", "box", 7000.0, 5.0));
    hist.back().simd_backend = "avx2";
  }
  EXPECT_TRUE(AnyRegression(GateRun(fresh, hist, GateOptions{})));

  // ...an untagged fresh run still gates against untagged history...
  const BenchRun legacy_fresh = MakeRun("sta_batch", "f2", "box", 500.0, 5.0);
  EXPECT_TRUE(AnyRegression(GateRun(legacy_fresh, hist, GateOptions{})));

  // ...and same_backend_only=false pools every row again.
  GateOptions pooled;
  pooled.same_backend_only = false;
  const auto pooled_verdicts = GateRun(fresh, hist, pooled);
  bool saw_scalar_series = false;
  for (const auto& v : pooled_verdicts)
    if (v.series == "scalar_masks_per_sec") {
      EXPECT_EQ(v.baseline_n, 8);  // window caps the pooled 9
      saw_scalar_series = true;
    }
  EXPECT_TRUE(saw_scalar_series);
}

}  // namespace
}  // namespace adq::obs
