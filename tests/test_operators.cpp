/// Tests for the three registered benchmark operators: functional
/// correctness against exact arithmetic golden models, register
/// discipline, and bus/spec metadata.

#include <gtest/gtest.h>

#include "gen/operator.h"
#include "sim/logic_sim.h"
#include "util/fixed_point.h"
#include "util/rng.h"

namespace adq::gen {
namespace {

// Golden model of the butterfly's fixed-point semantics: outputs are
// A +/- (B*W) with the complex product computed exactly and scaled by
// an arithmetic (floor) shift of width-1 bits, the truncation fused
// with the output addition (see BuildButterflyOperator).
struct ButterflyGold {
  long long xr, xi, yr, yi;
};
ButterflyGold GoldButterfly(int w, long long ar, long long ai,
                            long long br, long long bi, long long wr,
                            long long wi) {
  const int s = w - 1;
  const long long k1 = wr * (br + bi);
  const long long k2 = br * (wi - wr);
  const long long k3 = bi * (wr + wi);
  auto fl = [s](long long v) {  // floor shift (arithmetic)
    return v >> s;
  };
  return ButterflyGold{ar + fl(k1 - k3), ai + fl(k1 + k2),
                       ar + fl(k3 - k1), ai + fl(-k1 - k2)};
}

TEST(BoothOperator, SpecAndBuses) {
  const Operator op = BuildBoothOperator(16);
  EXPECT_EQ(op.spec.data_width, 16);
  EXPECT_EQ(op.spec.scalable_buses,
            (std::vector<std::string>{"a", "b"}));
  EXPECT_NEAR(op.spec.target_clock_ns, 0.8, 1e-12);
  EXPECT_EQ(op.nl.InputBus("a").width(), 16);
  EXPECT_EQ(op.nl.OutputBus("p").width(), 32);
}

TEST(BoothOperator, TwoCycleLatencyProduct) {
  const Operator op = BuildBoothOperator(16);
  sim::LogicSim sim(op.nl);
  util::Rng rng(21);
  // Pipeline: operands presented before the tick of cycle t are
  // readable at the output registers after the tick of cycle t+1.
  std::vector<std::pair<std::int64_t, std::int64_t>> ops;
  for (int i = 0; i < 20; ++i)
    ops.push_back({rng.UniformInt(-32768, 32767),
                   rng.UniformInt(-32768, 32767)});
  for (std::size_t t = 0; t < ops.size() + 1; ++t) {
    if (t < ops.size()) {
      sim.SetBus(op.nl.InputBus("a"), util::FromSigned(ops[t].first, 16));
      sim.SetBus(op.nl.InputBus("b"), util::FromSigned(ops[t].second, 16));
    }
    sim.Tick();
    if (t >= 1) {
      const auto got =
          util::ToSigned(sim.ReadBus(op.nl.OutputBus("p")), 32);
      ASSERT_EQ(got, ops[t - 1].first * ops[t - 1].second) << "t=" << t;
    }
  }
}

TEST(BoothOperator, RegisterDiscipline) {
  const Operator op = BuildBoothOperator(16);
  // Every primary input feeds exactly one DFF; every primary output is
  // driven by a DFF.
  for (const netlist::NetId pi : op.nl.primary_inputs()) {
    ASSERT_EQ(op.nl.net(pi).sinks.size(), 1u);
    EXPECT_TRUE(op.nl.inst(op.nl.net(pi).sinks[0].inst).is_sequential());
  }
  for (const netlist::NetId po : op.nl.primary_outputs()) {
    ASSERT_TRUE(op.nl.net(po).driver.valid());
    EXPECT_TRUE(op.nl.inst(op.nl.net(po).driver.inst).is_sequential());
  }
}

TEST(BoothOperator, SmallerWidthsWork) {
  const Operator op = BuildBoothOperator(8);
  sim::LogicSim sim(op.nl);
  sim.SetBus(op.nl.InputBus("a"), util::FromSigned(-128, 8));
  sim.SetBus(op.nl.InputBus("b"), util::FromSigned(-128, 8));
  sim.Tick();
  sim.Tick();
  EXPECT_EQ(util::ToSigned(sim.ReadBus(op.nl.OutputBus("p")), 16), 16384);
}

class ButterflyRandom : public ::testing::TestWithParam<int> {};

TEST_P(ButterflyRandom, MatchesGoldenModel) {
  const Operator op = BuildButterflyOperator(16);
  sim::LogicSim sim(op.nl);
  util::Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const long long ar = rng.UniformInt(-32768, 32767);
    const long long ai = rng.UniformInt(-32768, 32767);
    const long long br = rng.UniformInt(-32768, 32767);
    const long long bi = rng.UniformInt(-32768, 32767);
    const long long wr = rng.UniformInt(-32768, 32767);
    const long long wi = rng.UniformInt(-32768, 32767);
    sim.SetBus(op.nl.InputBus("ar"), util::FromSigned(ar, 16));
    sim.SetBus(op.nl.InputBus("ai"), util::FromSigned(ai, 16));
    sim.SetBus(op.nl.InputBus("br"), util::FromSigned(br, 16));
    sim.SetBus(op.nl.InputBus("bi"), util::FromSigned(bi, 16));
    sim.SetBus(op.nl.InputBus("wr"), util::FromSigned(wr, 16));
    sim.SetBus(op.nl.InputBus("wi"), util::FromSigned(wi, 16));
    sim.Tick();
    sim.Tick();
    const ButterflyGold g = GoldButterfly(16, ar, ai, br, bi, wr, wi);
    ASSERT_EQ(util::ToSigned(sim.ReadBus(op.nl.OutputBus("xr")), 18), g.xr);
    ASSERT_EQ(util::ToSigned(sim.ReadBus(op.nl.OutputBus("xi")), 18), g.xi);
    ASSERT_EQ(util::ToSigned(sim.ReadBus(op.nl.OutputBus("yr")), 18), g.yr);
    ASSERT_EQ(util::ToSigned(sim.ReadBus(op.nl.OutputBus("yi")), 18), g.yi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ButterflyRandom, ::testing::Values(1, 2, 3));

TEST(Butterfly, UnitTwiddlePassesAThrough) {
  // W = 1 + 0j (Q15: wr = 32767 ~ 1): X ~ A + B, Y ~ A - B.
  const Operator op = BuildButterflyOperator(16);
  sim::LogicSim sim(op.nl);
  const long long ar = 1000, ai = 2000, br = 300, bi = -400;
  sim.SetBus(op.nl.InputBus("ar"), util::FromSigned(ar, 16));
  sim.SetBus(op.nl.InputBus("ai"), util::FromSigned(ai, 16));
  sim.SetBus(op.nl.InputBus("br"), util::FromSigned(br, 16));
  sim.SetBus(op.nl.InputBus("bi"), util::FromSigned(bi, 16));
  sim.SetBus(op.nl.InputBus("wr"), util::FromSigned(32767, 16));
  sim.SetBus(op.nl.InputBus("wi"), util::FromSigned(0, 16));
  sim.Tick();
  sim.Tick();
  // Within 1 LSB of A + B (the Q15 "1" is 32767/32768).
  EXPECT_NEAR(
      (double)util::ToSigned(sim.ReadBus(op.nl.OutputBus("xr")), 18),
      (double)(ar + br), 2.0);
  EXPECT_NEAR(
      (double)util::ToSigned(sim.ReadBus(op.nl.OutputBus("yi")), 18),
      (double)(ai - bi), 2.0);
}

TEST(FirMac, AccumulatesQuadProducts) {
  const Operator op = BuildFirMacOperator(16);
  sim::LogicSim sim(op.nl);
  sim.Reset();
  util::Rng rng(4242);
  long long expect = 0;
  const int kCycles = 8;  // a full 30-tap frame (4 taps/cycle)
  std::vector<std::array<std::int64_t, 8>> stim(kCycles);
  for (auto& s : stim)
    for (auto& v : s) v = rng.UniformInt(-32768, 32767);
  // clr pulse, then stream.
  for (int t = 0; t < kCycles + 2; ++t) {
    for (int k = 0; k < 4; ++k) {
      const std::int64_t x =
          (t >= 1 && t <= kCycles) ? stim[t - 1][k] : 0;
      const std::int64_t c =
          (t >= 1 && t <= kCycles) ? stim[t - 1][4 + k] : 0;
      sim.SetBus(op.nl.InputBus("x" + std::to_string(k)),
                 util::FromSigned(x, 16));
      sim.SetBus(op.nl.InputBus("c" + std::to_string(k)),
                 util::FromSigned(c, 16));
    }
    sim.SetBus(op.nl.InputBus("clr"), t == 0 ? 1 : 0);
    sim.Tick();
  }
  sim.Tick();
  for (const auto& s : stim)
    for (int k = 0; k < 4; ++k) expect += s[k] * s[4 + k];
  EXPECT_EQ(util::ToSigned(sim.ReadBus(op.nl.OutputBus("y")), 40), expect);
}

TEST(FirMac, ClearResetsAccumulator) {
  const Operator op = BuildFirMacOperator(16);
  sim::LogicSim sim(op.nl);
  sim.Reset();
  sim.SetBus(op.nl.InputBus("x0"), util::FromSigned(100, 16));
  sim.SetBus(op.nl.InputBus("c0"), util::FromSigned(5, 16));
  sim.SetBus(op.nl.InputBus("clr"), 0);
  sim.Tick();
  sim.Tick();
  sim.Tick();
  // Now clear: the accumulator must go to zero on the next edge
  // regardless of the pending sum.
  sim.SetBus(op.nl.InputBus("clr"), 1);
  sim.Tick();
  sim.Tick();  // clr registered: takes effect one cycle later
  // After the clear cycle the accumulator output reads 0.
  sim.SetBus(op.nl.InputBus("x0"), 0);
  sim.SetBus(op.nl.InputBus("c0"), 0);
  sim.SetBus(op.nl.InputBus("clr"), 0);
  sim.Tick();
  sim.Tick();
  EXPECT_EQ(util::ToSigned(sim.ReadBus(op.nl.OutputBus("y")), 40), 0);
}

TEST(Operators, SpecScalableBusesExist) {
  for (const Operator& op :
       {BuildBoothOperator(16), BuildButterflyOperator(16),
        BuildFirMacOperator(16)}) {
    for (const std::string& bus : op.spec.scalable_buses) {
      EXPECT_EQ(op.nl.InputBus(bus).width(), op.spec.data_width)
          << op.spec.name << " bus " << bus;
    }
    EXPECT_NO_THROW(op.nl.Validate());
  }
}

TEST(Operators, AllNetsDriven) {
  const Operator op = BuildFirMacOperator(8);
  for (std::uint32_t n = 0; n < op.nl.num_nets(); ++n) {
    const auto& net = op.nl.net(netlist::NetId(n));
    EXPECT_TRUE(net.driver.valid() || net.is_primary_input);
  }
}

}  // namespace
}  // namespace adq::gen
