/// Property-based randomized tests: every datapath generator is
/// cross-checked against 64-bit integer arithmetic under the DVAS
/// accuracy knob (random zeroed-LSB masks), and the exploration's
/// monotone-infeasibility assumption — the correctness basis of the
/// pruning filter — is checked point-by-point on a small design.
///
/// All randomness draws from util::Rng with fixed seeds, so failures
/// reproduce exactly.

#include <gtest/gtest.h>

#include <map>

#include "core/explore.h"
#include "gen/adders.h"
#include "gen/array_mult.h"
#include "gen/booth.h"
#include "gen/wallace.h"
#include "harness.h"
#include "util/fixed_point.h"
#include "util/rng.h"

namespace adq {
namespace {

constexpr int kVectors = 1200;  // >= 1k random vectors per property

// ---------------------------------------------------------------
// Multipliers under random accuracy masks.

/// Shared property: a signed multiplier netlist computes the exact
/// product of its LSB-masked operands for every masking depth.
void CheckSignedMultiplier(netlist::Netlist& nl, int wa, int wb,
                           std::uint64_t seed) {
  nl.Validate();
  sim::LogicSim sim(nl);
  util::Rng rng(seed);
  for (int t = 0; t < kVectors; ++t) {
    // Random operands and a random accuracy mode per operand
    // (za/zb zeroed LSBs — 0 is full precision).
    const int za = (int)rng.UniformInt(0, wa - 1);
    const int zb = (int)rng.UniformInt(0, wb - 1);
    const std::uint64_t a = util::MaskLsbs(rng.Word(), wa, za);
    const std::uint64_t b = util::MaskLsbs(rng.Word(), wb, zb);
    sim.SetBus(nl.InputBus("a"), a);
    sim.SetBus(nl.InputBus("b"), b);
    sim.Settle();
    const std::int64_t expected =
        util::ToSigned(a, wa) * util::ToSigned(b, wb);
    ASSERT_EQ(util::ToSigned(sim.ReadBus(nl.OutputBus("p")), wa + wb),
              expected)
        << "a=" << util::ToSigned(a, wa) << " b=" << util::ToSigned(b, wb)
        << " za=" << za << " zb=" << zb;
  }
}

TEST(Properties, BoothMatchesIntegerReferenceUnderMasks) {
  netlist::Netlist nl;
  const gen::Word a = test::InWord(nl, "a", 9);
  const gen::Word b = test::InWord(nl, "b", 8);
  test::OutWord(nl, "p", gen::BoothMultiplySigned(nl, a, b));
  CheckSignedMultiplier(nl, 9, 8, /*seed=*/11);
}

TEST(Properties, BaughWooleyMatchesIntegerReferenceUnderMasks) {
  netlist::Netlist nl;
  const gen::Word a = test::InWord(nl, "a", 8);
  const gen::Word b = test::InWord(nl, "b", 8);
  test::OutWord(nl, "p", gen::BaughWooleyMultiplySigned(nl, a, b));
  CheckSignedMultiplier(nl, 8, 8, /*seed=*/12);
}

TEST(Properties, ArrayUnsignedMatchesIntegerReferenceUnderMasks) {
  netlist::Netlist nl;
  const gen::Word a = test::InWord(nl, "a", 8);
  const gen::Word b = test::InWord(nl, "b", 7);
  test::OutWord(nl, "p", gen::ArrayMultiplyUnsigned(nl, a, b));
  nl.Validate();
  sim::LogicSim sim(nl);
  util::Rng rng(13);
  for (int t = 0; t < kVectors; ++t) {
    const int za = (int)rng.UniformInt(0, 7);
    const int zb = (int)rng.UniformInt(0, 6);
    const std::uint64_t a_v = util::MaskLsbs(rng.Word(), 8, za);
    const std::uint64_t b_v = util::MaskLsbs(rng.Word(), 7, zb);
    sim.SetBus(nl.InputBus("a"), a_v);
    sim.SetBus(nl.InputBus("b"), b_v);
    sim.Settle();
    ASSERT_EQ(sim.ReadBus(nl.OutputBus("p")), a_v * b_v)
        << a_v << " * " << b_v;
  }
}

// ---------------------------------------------------------------
// Adders: all three carry-propagate architectures.

class AdderPropertyTest : public ::testing::TestWithParam<gen::AdderStyle> {
};

TEST_P(AdderPropertyTest, SumAndCarryMatchIntegerReferenceUnderMasks) {
  constexpr int kW = 16;
  netlist::Netlist nl;
  const gen::Word a = test::InWord(nl, "a", kW);
  const gen::Word b = test::InWord(nl, "b", kW);
  const netlist::NetId cin = nl.AddInputPort("cin");
  nl.AddInputBus("c", {cin});
  const gen::AdderResult r = gen::MakeAdder(nl, a, b, cin, GetParam());
  test::OutWord(nl, "s", r.sum);
  test::OutWord(nl, "co", {r.carry});
  nl.Validate();
  sim::LogicSim sim(nl);
  util::Rng rng(17 + (int)GetParam());
  for (int t = 0; t < kVectors; ++t) {
    const int za = (int)rng.UniformInt(0, kW);
    const int zb = (int)rng.UniformInt(0, kW);
    const std::uint64_t av = util::MaskLsbs(rng.Word(), kW, za);
    const std::uint64_t bv = util::MaskLsbs(rng.Word(), kW, zb);
    const std::uint64_t cv = rng.Flip() ? 1 : 0;
    sim.SetBus(nl.InputBus("a"), av);
    sim.SetBus(nl.InputBus("b"), bv);
    sim.SetBus(nl.InputBus("c"), cv);
    sim.Settle();
    const std::uint64_t full = av + bv + cv;
    ASSERT_EQ(sim.ReadBus(nl.OutputBus("s")), full & ((1ULL << kW) - 1));
    ASSERT_EQ(sim.ReadBus(nl.OutputBus("co")), (full >> kW) & 1ULL);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStyles, AdderPropertyTest,
                         ::testing::Values(gen::AdderStyle::kRipple,
                                           gen::AdderStyle::kCla,
                                           gen::AdderStyle::kKoggeStone));

// ---------------------------------------------------------------
// Wallace reduction: sum preservation on a randomized matrix shape.

TEST(Properties, WallaceReductionPreservesWeightedSum) {
  netlist::Netlist nl;
  util::Rng shape_rng(23);
  gen::BitMatrix m;
  std::vector<std::pair<int, netlist::NetId>> entries;  // (weight, net)
  int port = 0;
  for (int col = 0; col < 10; ++col) {
    const int height = 1 + (int)shape_rng.UniformInt(0, 6);
    for (int h = 0; h < height; ++h) {
      const netlist::NetId bit =
          nl.AddInputPort("i" + std::to_string(port++));
      gen::AddBit(m, bit, col);
      entries.push_back({col, bit});
    }
  }
  const gen::TwoRows rows = gen::ReduceToTwo(nl, m);
  test::OutWord(nl, "ra", rows.a);
  test::OutWord(nl, "rb", rows.b);
  nl.Validate();

  sim::LogicSim sim(nl);
  util::Rng rng(24);
  for (int t = 0; t < kVectors; ++t) {
    std::uint64_t expected = 0;
    for (const auto& [w, net] : entries) {
      const bool v = rng.Flip();
      sim.SetInput(net, v);
      if (v) expected += 1ULL << w;
    }
    sim.Settle();
    ASSERT_EQ(sim.ReadBus(nl.OutputBus("ra")) +
                  sim.ReadBus(nl.OutputBus("rb")),
              expected);
  }
}

// ---------------------------------------------------------------
// Monotone infeasibility: the assumption behind the exploration's
// pruning filter. If (VDD, mask) has a violation at bitwidth b, it
// must have one at every bitwidth > b (activating more input bits
// only ever adds timing paths).

TEST(Properties, InfeasibilityIsMonotoneInBitwidth) {
  const tech::CellLibrary lib;
  core::FlowOptions fopt;
  fopt.grid = {2, 2};
  fopt.clock_ns = 0.55;
  const core::ImplementedDesign design =
      core::RunImplementationFlow(gen::BuildBoothOperator(8), lib, fopt);

  core::ExploreOptions opt;
  opt.bitwidths = {1, 2, 3, 4, 5, 6, 7, 8};
  opt.activity_cycles = 64;
  opt.monotonic_pruning = false;  // evaluate every point explicitly
  opt.keep_all_points = true;
  const core::ExplorationResult r =
      core::ExploreDesignSpace(design, lib, opt);

  // (vdd, mask) -> feasibility by ascending bitwidth (all_points is
  // produced in ascending-bitwidth sweep order).
  std::map<std::pair<double, std::uint32_t>, std::vector<bool>> series;
  for (const core::ExploredPoint& p : r.all_points)
    series[{p.vdd, p.mask}].push_back(p.feasible);

  long checked = 0, infeasible = 0;
  for (const auto& [key, feas] : series) {
    ASSERT_EQ(feas.size(), opt.bitwidths.size());
    bool dead = false;
    for (const bool f : feas) {
      if (dead) {
        EXPECT_FALSE(f) << "VDD " << key.first << " mask " << key.second
                        << " resurrected";
      }
      if (!f) {
        dead = true;
        ++infeasible;
      }
      ++checked;
    }
  }
  EXPECT_EQ(checked, (long)(opt.bitwidths.size() * 5 * 16));
  // The property is vacuous if nothing ever fails; this design/clock
  // must produce a real mix (the paper reports ~75% filtered).
  EXPECT_GT(infeasible, 0);
  EXPECT_GT(r.stats.feasible, 0);
}

}  // namespace
}  // namespace adq
