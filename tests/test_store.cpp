/// Tests for the persistent exploration store (store/
/// exploration_store.h): bit-exact round-trips, full-key verification
/// on digest collisions, crash-recovery salvage of damaged segments
/// (truncated body, torn final record, stale schema, leftover tmp
/// file) and multi-writer Refresh.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <array>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "store/exploration_store.h"

namespace adq::store {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test directory under the gtest temp root.
fs::path FreshDir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::uint64_t BitsOf(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

/// The one segment file a single-context Flush() produced.
fs::path OnlySegment(const fs::path& dir) {
  fs::path found;
  int n = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".adqstore") {
      found = e.path();
      ++n;
    }
  }
  EXPECT_EQ(n, 1) << "expected exactly one segment in " << dir;
  return found;
}

void TruncateTo(const fs::path& p, std::uintmax_t size) {
  std::error_code ec;
  fs::resize_file(p, size, ec);
  ASSERT_FALSE(ec) << ec.message();
}

/// On-disk segment geometry (mirrors exploration_store.cpp; the
/// salvage tests slice files at exact record boundaries).
constexpr std::size_t kHeaderFixed = 8 + 8 + 8;
constexpr std::size_t kRecordBytes = 4 + 8 + 8 + 1 + 8;

std::size_t BodyStart(const std::string& canonical) {
  return kHeaderFixed + canonical.size() + 8 /*record count*/;
}

/// Hand-writes a segment file, optionally lying in the header's hash
/// field (the loader must recompute and never trust it).
void WriteSegment(const fs::path& path, std::uint64_t claimed_hash,
                  const std::string& canonical,
                  const std::vector<std::array<std::uint64_t, 2>>& recs) {
  std::string body = "ADQXSTO1";
  auto put64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      body.push_back(static_cast<char>((v >> (8 * i)) & 0xffULL));
  };
  auto put32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      body.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  };
  put64(claimed_hash);
  put64(canonical.size());
  body += canonical;
  put64(recs.size());
  for (const auto& r : recs) {  // r = {mask, wns bits}; bw=8, vdd=1.0
    put32(8u);
    put64(BitsOf(1.0));
    put64(r[0]);
    body.push_back(1);  // feasible
    put64(r[1]);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(body.data(), 1, body.size(), f), body.size());
  std::fclose(f);
}

TEST(Store, RoundTripIsBitExact) {
  const fs::path dir = FreshDir("store_roundtrip");
  const StoreKey key = MakeStoreKey("design-a");
  // Values chosen to catch any text or float-rounding path: negative
  // zero, a denormal, an irrational-looking double and +-inf stay
  // exact only if stored as raw bit patterns.
  const struct {
    int bw;
    double vdd;
    std::uint64_t mask;
    bool feasible;
    double wns;
  } recs[] = {
      {1, 1.0, 0x0u, true, 0.3},
      {8, 0.7, 0x5u, false, -0.0},
      {16, 0.6, 0xffffffffffffffffull, true,
       std::numeric_limits<double>::denorm_min()},
      {32, 0.9, 0x8000000000000000ull, false,
       -std::numeric_limits<double>::infinity()},
  };
  {
    ExplorationStore w(dir.string());
    const int ctx = w.Context(key);
    for (const auto& r : recs)
      w.Insert(ctx, r.bw, r.vdd, r.mask, r.feasible, r.wns);
    // A duplicate neither grows the store nor reaches disk twice.
    w.Insert(ctx, 1, 1.0, 0x0u, true, 0.3);
    EXPECT_EQ(w.stats().duplicate_insertions, 1u);
    EXPECT_EQ(w.num_records(), 4u);
    ASSERT_TRUE(w.Flush());
  }
  ExplorationStore r(dir.string());
  EXPECT_EQ(r.stats().segments_loaded, 1u);
  EXPECT_EQ(r.num_records(), 4u);
  const int ctx = r.Context(key);
  for (const auto& want : recs) {
    bool feasible = !want.feasible;
    double wns = 12345.0;
    ASSERT_TRUE(r.Lookup(ctx, want.bw, want.vdd, want.mask, &feasible,
                         &wns));
    EXPECT_EQ(feasible, want.feasible);
    EXPECT_EQ(BitsOf(wns), BitsOf(want.wns));  // exact bit pattern
  }
  bool f;
  double w;
  EXPECT_FALSE(r.Lookup(ctx, 1, 1.0, 0x1u, &f, &w));  // absent mask
  EXPECT_FALSE(r.Lookup(ctx, 2, 1.0, 0x0u, &f, &w));  // absent bw
  EXPECT_EQ(r.stats().misses, 2u);
}

TEST(Store, TruncatedBodyKeepsCompleteRecords) {
  const fs::path dir = FreshDir("store_truncated");
  const StoreKey key = MakeStoreKey("design-t");
  {
    ExplorationStore w(dir.string());
    const int ctx = w.Context(key);
    for (int m = 0; m < 5; ++m)
      w.Insert(ctx, 8, 1.0, static_cast<std::uint64_t>(m), true,
               0.1 * m);
    ASSERT_TRUE(w.Flush());
  }
  // Chop mid-way through the third record: a crash while a (pre-
  // rename-discipline) writer was mid-body.
  TruncateTo(OnlySegment(dir),
             BodyStart(key.canonical) + 2 * kRecordBytes +
                 kRecordBytes / 2);
  ExplorationStore r(dir.string());
  EXPECT_EQ(r.stats().segments_salvaged, 1u);
  EXPECT_EQ(r.stats().segments_loaded, 0u);
  EXPECT_EQ(r.num_records(), 2u);  // the complete records survive
  const int ctx = r.Context(key);
  bool f;
  double wns;
  EXPECT_TRUE(r.Lookup(ctx, 8, 1.0, 1u, &f, &wns));
  EXPECT_FALSE(r.Lookup(ctx, 8, 1.0, 2u, &f, &wns));  // the torn one
}

TEST(Store, TornFinalRecordIsDropped) {
  const fs::path dir = FreshDir("store_torn");
  const StoreKey key = MakeStoreKey("design-f");
  {
    ExplorationStore w(dir.string());
    const int ctx = w.Context(key);
    for (int m = 0; m < 3; ++m)
      w.Insert(ctx, 4, 0.8, static_cast<std::uint64_t>(m), m != 1,
               -0.01 * m);
    ASSERT_TRUE(w.Flush());
  }
  TruncateTo(OnlySegment(dir),
             BodyStart(key.canonical) + 3 * kRecordBytes - 1);
  ExplorationStore r(dir.string());
  EXPECT_EQ(r.stats().segments_salvaged, 1u);
  EXPECT_EQ(r.num_records(), 2u);
  const int ctx = r.Context(key);
  bool f;
  double wns;
  EXPECT_TRUE(r.Lookup(ctx, 4, 0.8, 1u, &f, &wns));
  EXPECT_FALSE(f);
  EXPECT_FALSE(r.Lookup(ctx, 4, 0.8, 2u, &f, &wns));
}

TEST(Store, StaleSchemaAndTmpFilesAreIgnored) {
  const fs::path dir = FreshDir("store_stale");
  const StoreKey key = MakeStoreKey("design-s");
  {
    ExplorationStore w(dir.string());
    w.Insert(w.Context(key), 8, 1.0, 0u, true, 0.0);
    ASSERT_TRUE(w.Flush());
  }
  // Bump the schema version byte: a future-format segment must be
  // skipped whole, never misparsed.
  {
    const fs::path seg = OnlySegment(dir);
    std::FILE* f = std::fopen(seg.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 7, SEEK_SET), 0);
    std::fputc('9', f);
    std::fclose(f);
  }
  // Plus a crashed writer's leftover tmp file full of garbage.
  {
    std::FILE* f =
        std::fopen((dir / "tmp-seg-p1-n0-dead.adqstore").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a segment", f);
    std::fclose(f);
  }
  ExplorationStore r(dir.string());
  EXPECT_EQ(r.stats().segments_ignored, 1u);  // stale schema
  EXPECT_EQ(r.stats().segments_loaded, 0u);   // tmp never even opened
  EXPECT_EQ(r.num_records(), 0u);
}

TEST(Store, DigestCollisionDegradesToMissNeverAliases) {
  const fs::path dir = FreshDir("store_collision");
  // Two different designs whose segment headers claim the same
  // digest (a bit-rotted header, or a genuine 64-bit collision). The
  // loader recomputes the digest from the canonical bytes and keys
  // contexts by the full canonical encoding, so neither design may
  // ever see the other's verdicts.
  WriteSegment(dir / "seg-a.adqstore", /*claimed_hash=*/42u, "design-a",
               {{{0x1u, BitsOf(0.25)}}});
  WriteSegment(dir / "seg-b.adqstore", /*claimed_hash=*/42u, "design-b",
               {{{0x1u, BitsOf(-0.75)}}});
  ExplorationStore r(dir.string());
  EXPECT_EQ(r.num_records(), 2u);
  const int ca = r.Context(MakeStoreKey("design-a"));
  const int cb = r.Context(MakeStoreKey("design-b"));
  EXPECT_NE(ca, cb);
  bool f;
  double wns;
  ASSERT_TRUE(r.Lookup(ca, 8, 1.0, 0x1u, &f, &wns));
  EXPECT_EQ(wns, 0.25);
  ASSERT_TRUE(r.Lookup(cb, 8, 1.0, 0x1u, &f, &wns));
  EXPECT_EQ(wns, -0.75);
}

TEST(Store, RefreshPicksUpOtherWritersSegments) {
  const fs::path dir = FreshDir("store_refresh");
  const StoreKey key = MakeStoreKey("design-r");
  ExplorationStore a(dir.string());
  ExplorationStore b(dir.string());
  const int actx = a.Context(key);
  a.Insert(actx, 8, 0.9, 0x3u, true, 0.125);
  ASSERT_TRUE(a.Flush());

  const int bctx = b.Context(key);
  bool f;
  double wns;
  EXPECT_FALSE(b.Lookup(bctx, 8, 0.9, 0x3u, &f, &wns));
  b.Refresh();
  ASSERT_TRUE(b.Lookup(bctx, 8, 0.9, 0x3u, &f, &wns));
  EXPECT_TRUE(f);
  EXPECT_EQ(BitsOf(wns), BitsOf(0.125));
  // A's own segment is not re-read by its own Refresh.
  const auto loaded_before = a.stats().segments_loaded;
  a.Refresh();
  EXPECT_EQ(a.stats().segments_loaded, loaded_before);
}

TEST(Store, KeyDigestIsVerifiedOnContext) {
  const fs::path dir = FreshDir("store_badkey");
  ExplorationStore s(dir.string());
  StoreKey bad;
  bad.canonical = "design-x";
  bad.hash = 0xdeadbeefULL;  // not StoreHash("design-x")
  EXPECT_THROW(s.Context(bad), std::exception);
}

}  // namespace
}  // namespace adq::store
