/// End-to-end integration tests: the whole methodology (flow +
/// exploration + baselines) on a small operator, checking the
/// paper-level claims hold qualitatively at reduced scale.

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/dvas.h"
#include "core/explore.h"
#include "core/pareto.h"
#include "netlist/verilog.h"
#include "sim/logic_sim.h"
#include "sta/slack_histogram.h"
#include "sta/sta.h"
#include "util/fixed_point.h"
#include "util/rng.h"

namespace adq {
namespace {

const tech::CellLibrary& Lib() {
  static const tech::CellLibrary lib;
  return lib;
}

struct Setup {
  core::ImplementedDesign ours;
  core::ImplementedDesign flat;
  core::ExplorationResult proposed;
  core::ExplorationResult dvas_nobb;
  core::ExplorationResult dvas_fbb;
};

const Setup& GetSetup() {
  static const Setup s = [] {
    Setup out;
    core::FlowOptions grid;
    grid.grid = {2, 2};
    grid.clock_ns = 0.55;
    out.ours = core::RunImplementationFlow(gen::BuildBoothOperator(8),
                                           Lib(), grid);
    core::FlowOptions flat;
    flat.clock_ns = 0.55;
    out.flat = core::RunImplementationFlow(gen::BuildBoothOperator(8),
                                           Lib(), flat);
    core::ExploreOptions xopt;
    xopt.bitwidths = {2, 3, 4, 5, 6, 7, 8};
    xopt.activity_cycles = 192;
    out.proposed = core::ExploreDesignSpace(out.ours, Lib(), xopt);
    out.dvas_nobb =
        core::ExploreDvas(out.flat, Lib(), core::DvasVariant::kNoBB, xopt);
    out.dvas_fbb =
        core::ExploreDvas(out.flat, Lib(), core::DvasVariant::kFBB, xopt);
    return out;
  }();
  return s;
}

TEST(Integration, BothImplementationsCloseTiming) {
  EXPECT_TRUE(GetSetup().ours.timing_met);
  EXPECT_TRUE(GetSetup().flat.timing_met);
}

TEST(Integration, FunctionalAfterFullFlow) {
  // The flow (buffering + sizing) must preserve the multiply function.
  const netlist::Netlist& nl = GetSetup().ours.op.nl;
  sim::LogicSim sim(nl);
  util::Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    const std::int64_t a = rng.UniformInt(-128, 127);
    const std::int64_t b = rng.UniformInt(-128, 127);
    sim.SetBus(nl.InputBus("a"), util::FromSigned(a, 8));
    sim.SetBus(nl.InputBus("b"), util::FromSigned(b, 8));
    sim.Tick();
    sim.Tick();
    ASSERT_EQ(util::ToSigned(sim.ReadBus(nl.OutputBus("p")), 16), a * b);
  }
}

TEST(Integration, ProposedReachesMaxAccuracy) {
  // Like the paper: the partitioned design must have a full-accuracy
  // configuration (boost enough domains).
  EXPECT_TRUE(GetSetup().proposed.Mode(8).has_solution);
}

TEST(Integration, ProposedNeverWorseThanDvasNoBB) {
  const auto ours = core::Frontier(GetSetup().proposed);
  const auto base = core::Frontier(GetSetup().dvas_nobb);
  for (const core::ParetoPoint& p : base) {
    const auto saving = core::SavingAt(ours, base, p.bitwidth);
    if (!saving) continue;
    // Small guardband-induced regressions allowed (the paper sees the
    // same effect on the butterfly); large ones are a bug.
    EXPECT_GT(*saving, -0.15) << "bitwidth " << p.bitwidth;
  }
}

TEST(Integration, ProposedBeatsDvasFbbSomewhere) {
  // The headline claim at small scale: at some accuracy the partial
  // boost beats all-FBB by a clear margin (leakage of unboosted
  // domains saved).
  const auto ours = core::Frontier(GetSetup().proposed);
  const auto base = core::Frontier(GetSetup().dvas_fbb);
  double best = -1.0;
  for (const core::ParetoPoint& p : base) {
    const auto saving = core::SavingAt(ours, base, p.bitwidth);
    if (saving) best = std::max(best, *saving);
  }
  EXPECT_GT(best, 0.05);
}

TEST(Integration, DvasNoBBLimitedReach) {
  // DVAS(NoBB) must fail at full accuracy (the implementation was
  // characterized all-FBB) — exactly the paper's observation.
  EXPECT_FALSE(GetSetup().dvas_nobb.Mode(8).has_solution);
  EXPECT_TRUE(GetSetup().dvas_fbb.Mode(8).has_solution);
}

TEST(Integration, StaFilterRateSubstantial) {
  // Paper Sec. III-C: ~75% of explored points are filtered by STA.
  // At reduced scale the exact number differs; it must be material.
  const double rate = GetSetup().proposed.stats.FilterRate();
  EXPECT_GT(rate, 0.25);
  EXPECT_LT(rate, 0.99);
}

TEST(Integration, OptimalMasksBoostMoreAtHigherAccuracy) {
  // Popcount of the chosen FBB mask must not decrease as accuracy
  // rises from the lowest to the highest configurable mode.
  const auto& modes = GetSetup().proposed.modes;
  int lo = -1, hi = -1;
  for (const auto& m : modes)
    if (m.has_solution) {
      if (lo < 0) lo = __builtin_popcount(m.best.mask);
      hi = __builtin_popcount(m.best.mask);
    }
  ASSERT_GE(lo, 0);
  EXPECT_LE(lo, hi);
}

TEST(Integration, WallOfSlackVisibleInHistogram) {
  // Post-implementation endpoint slacks at the nominal corner: a
  // large share must sit within 25% of the clock period of zero
  // (the wall), as in Fig. 1a.
  const core::ImplementedDesign& d = GetSetup().flat;
  sta::TimingAnalyzer an(d.op.nl, Lib(), d.loads);
  const std::vector<tech::BiasState> fbb(d.op.nl.num_instances(),
                                         tech::BiasState::kFBB);
  const auto rep = an.Analyze(1.0, d.clock_ns, fbb, nullptr, true);
  int near_wall = 0, active = 0;
  for (const auto& ep : rep.endpoints) {
    if (!ep.active) continue;
    ++active;
    if (ep.slack_ns < 0.25 * d.clock_ns) ++near_wall;
  }
  ASSERT_GT(active, 0);
  EXPECT_GT((double)near_wall / active, 0.25);
}

TEST(Integration, ControllerRoundTrip) {
  const core::RuntimeController ctrl(GetSetup().proposed);
  const auto modes = ctrl.SupportedModes();
  ASSERT_GE(modes.size(), 2u);
  const double e =
      ctrl.SwitchEnergyFj(modes.front(), modes.back());
  EXPECT_GE(e, 0.0);
}

TEST(Integration, VerilogDumpOfImplementedDesign) {
  const std::string v = netlist::ToVerilog(GetSetup().ours.op.nl);
  EXPECT_NE(v.find("module booth_mult8"), std::string::npos);
  EXPECT_NE(v.find("DFF"), std::string::npos);
}

}  // namespace
}  // namespace adq
