/// Tests for src/netlist: IR construction, invariants, rewiring,
/// topological ordering, levelization and the Verilog writer.

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/netlist.h"
#include "netlist/stats.h"
#include "netlist/topo.h"
#include "netlist/verilog.h"
#include "tech/cell_library.h"

namespace adq::netlist {
namespace {

using tech::CellKind;
using tech::DriveStrength;

Netlist SmallAndTree() {
  Netlist nl("and_tree");
  const NetId a = nl.AddInputPort("a");
  const NetId b = nl.AddInputPort("b");
  const NetId c = nl.AddInputPort("c");
  const NetId ab = nl.AddGate(CellKind::kAnd2, {a, b});
  const NetId abc = nl.AddGate(CellKind::kAnd2, {ab, c});
  nl.AddOutputPort("y", abc);
  return nl;
}

TEST(Netlist, ConstructionBasics) {
  const Netlist nl = SmallAndTree();
  EXPECT_EQ(nl.num_instances(), 2u);
  EXPECT_EQ(nl.num_nets(), 5u);
  EXPECT_EQ(nl.primary_inputs().size(), 3u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_NO_THROW(nl.Validate());
}

TEST(Netlist, DriverAndSinksConsistent) {
  const Netlist nl = SmallAndTree();
  const NetId a = nl.primary_inputs()[0];
  EXPECT_FALSE(nl.net(a).driver.valid());
  EXPECT_EQ(nl.net(a).sinks.size(), 1u);
  const NetId y = nl.primary_outputs()[0];
  EXPECT_TRUE(nl.net(y).driver.valid());
}

TEST(Netlist, WrongInputCountRejected) {
  Netlist nl;
  const NetId a = nl.AddInputPort("a");
  EXPECT_THROW(nl.AddGate(CellKind::kAnd2, {a}), CheckError);
}

TEST(Netlist, ConstNetsAreCached) {
  Netlist nl;
  EXPECT_EQ(nl.ConstNet(false), nl.ConstNet(false));
  EXPECT_EQ(nl.ConstNet(true), nl.ConstNet(true));
  EXPECT_NE(nl.ConstNet(false), nl.ConstNet(true));
}

TEST(Netlist, BusLookup) {
  Netlist nl;
  const NetId a0 = nl.AddInputPort("a[0]");
  const NetId a1 = nl.AddInputPort("a[1]");
  nl.AddInputBus("a", {a0, a1});
  EXPECT_EQ(nl.InputBus("a").width(), 2);
  EXPECT_THROW(nl.InputBus("nonexistent"), CheckError);
}

TEST(Netlist, RewireSinkMovesPin) {
  Netlist nl;
  const NetId a = nl.AddInputPort("a");
  const NetId b = nl.AddInputPort("b");
  const NetId y = nl.AddGate(CellKind::kBuf, {a});
  (void)y;
  const PinRef sink = nl.net(a).sinks[0];
  nl.RewireSink(sink, b);
  EXPECT_TRUE(nl.net(a).sinks.empty());
  EXPECT_EQ(nl.net(b).sinks.size(), 1u);
  EXPECT_NO_THROW(nl.Validate());
}

TEST(Netlist, AddCellWithOutputsConnectsFeedback) {
  Netlist nl;
  const NetId q = nl.NewNet();
  const NetId d = nl.AddGate(CellKind::kInv, {q});  // feedback loop
  nl.AddCellWithOutputs(CellKind::kDff, DriveStrength::kX1, {d}, {q});
  EXPECT_NO_THROW(nl.Validate());
  // The loop crosses a register, so topological ordering must succeed.
  EXPECT_EQ(TopologicalOrder(nl).size(), nl.num_instances());
}

TEST(Netlist, DoubleDriveRejected) {
  Netlist nl;
  const NetId a = nl.AddInputPort("a");
  const NetId y = nl.AddGate(CellKind::kBuf, {a});
  EXPECT_THROW(
      nl.AddCellWithOutputs(CellKind::kBuf, DriveStrength::kX1, {a}, {y}),
      CheckError);
}

TEST(Topo, OrderRespectsDependencies) {
  const Netlist nl = SmallAndTree();
  const auto order = TopologicalOrder(nl);
  ASSERT_EQ(order.size(), 2u);
  // The first AND drives the second.
  EXPECT_EQ(order[0].value, 0u);
  EXPECT_EQ(order[1].value, 1u);
}

TEST(Topo, CombinationalLoopDetected) {
  Netlist nl;
  const NetId fake = nl.NewNet();
  const NetId y = nl.AddGate(CellKind::kInv, {fake});
  // Close the loop without a register.
  const NetId z = nl.AddGate(CellKind::kInv, {y});
  nl.RewireSink(nl.net(fake).sinks[0], z);
  EXPECT_THROW(TopologicalOrder(nl), CheckError);
}

TEST(Topo, Levelize) {
  const Netlist nl = SmallAndTree();
  const auto levels = Levelize(nl);
  EXPECT_EQ(levels[0], 1);
  EXPECT_EQ(levels[1], 2);
  EXPECT_EQ(LogicDepth(nl), 2);
}

TEST(Stats, CountsAndArea) {
  const tech::CellLibrary lib;
  const Netlist nl = SmallAndTree();
  const NetlistStats st = ComputeStats(nl, lib);
  EXPECT_EQ(st.num_instances, 2u);
  EXPECT_EQ(st.num_comb, 2u);
  EXPECT_EQ(st.num_dffs, 0u);
  EXPECT_EQ(st.count_by_kind[static_cast<int>(CellKind::kAnd2)], 2u);
  EXPECT_NEAR(st.cell_area_um2,
              2 * lib.AreaUm2(CellKind::kAnd2, DriveStrength::kX1), 1e-9);
}

TEST(Verilog, EmitsModulePortsAndInstances) {
  const Netlist nl = SmallAndTree();
  const std::string v = ToVerilog(nl);
  EXPECT_NE(v.find("module and_tree"), std::string::npos);
  EXPECT_NE(v.find("input a"), std::string::npos);
  EXPECT_NE(v.find("output y"), std::string::npos);
  EXPECT_NE(v.find("AND2_X1"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, MultiOutputCellPins) {
  Netlist nl("fa");
  const NetId a = nl.AddInputPort("a");
  const NetId b = nl.AddInputPort("b");
  const NetId c = nl.AddInputPort("c");
  const auto outs = nl.AddCell(CellKind::kFa, DriveStrength::kX1, {a, b, c});
  nl.AddOutputPort("s", outs[0]);
  nl.AddOutputPort("co", outs[1]);
  const std::string v = ToVerilog(nl);
  EXPECT_NE(v.find(".S(s)"), std::string::npos);
  EXPECT_NE(v.find(".CO(co)"), std::string::npos);
}

}  // namespace
}  // namespace adq::netlist
