/// Contracts of the portable SIMD layer (util/simd.h) and the lane
/// kernels built on it (sta/lane_kernels.h):
///
///   * every vector primitive is elementwise bit-identical to the
///     scalar C++ expression documented next to it — exhaustively
///     over a pool of special values (±0, ±inf, NaN, denormals,
///     extremes), so NaN propagation, signed-zero selection and
///     ordered-compare semantics are pinned, not assumed;
///   * every lane kernel matches its reference scalar loop at every
///     row length around the vector-width boundaries (tails of
///     1..2*kWidth+3 lanes), and never writes a byte past row[n) —
///     canary-guarded;
///   * the batched STA sweep built from these kernels stays
///     bit-identical to scalar Analyze across all four generator
///     families x operator widths {8,16,32}, and its arrival lanes
///     are NaN/∞-free on every reached net.
///
/// The same binary compiled with -DADQ_SIMD=OFF runs this file on the
/// guaranteed scalar backend; CI's simd-off leg relies on that to
/// prove the fallback and the vector backends are interchangeable.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/accuracy.h"
#include "core/explore.h"
#include "core/flow.h"
#include "gen/operator.h"
#include "sta/lane_kernels.h"
#include "sta/sta.h"
#include "util/simd.h"

namespace adq {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNegInf = -kInf;

const tech::CellLibrary& Lib() {
  static const tech::CellLibrary lib;
  return lib;
}

/// Bit-level equality: distinguishes -0.0 from 0.0 and compares NaNs
/// by payload — the layer's contract is "same bits as the scalar
/// expression", not "compares equal".
bool SameBits(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}
bool SameBitsF(float a, float b) {
  std::uint32_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

/// For arithmetic results only: IEEE-754 leaves the surviving NaN
/// payload unspecified when both operands are NaN (and +/- add/mul
/// commute, so the scalar reference may evaluate b+a), so two NaNs
/// always match; everything else — including signed zeros — must be
/// bit-identical. Select/Min/Max route whole operands and stay on the
/// strict SameBits check.
bool ArithBits(double r, double want) {
  return SameBits(r, want) || (std::isnan(r) && std::isnan(want));
}
bool ArithBitsF(float r, float want) {
  return SameBitsF(r, want) || (std::isnan(r) && std::isnan(want));
}

/// The special-value pool every pairwise primitive test sweeps.
const std::vector<double>& Specials() {
  static const std::vector<double> v = {
      0.0,
      -0.0,
      kInf,
      kNegInf,
      std::numeric_limits<double>::quiet_NaN(),
      -std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      1.5,
      -2.25,
      1e-300,
      -1e300,
      3.7,
  };
  return v;
}

/// Loads lane i with a[(i + rot) % pool] — every lane sees a
/// different special value, so lane crosstalk would be caught.
simd::F64 LoadRot(const std::vector<double>& pool, std::size_t rot,
                  double* out) {
  for (int i = 0; i < simd::F64::kWidth; ++i)
    out[i] = pool[(rot + static_cast<std::size_t>(i)) % pool.size()];
  return simd::F64::Load(out);
}

TEST(SimdF64, ArithmeticMatchesScalarExpressionOnSpecials) {
  const auto& pool = Specials();
  double a[simd::F64::kWidth], b[simd::F64::kWidth],
      r[simd::F64::kWidth];
  for (std::size_t i = 0; i < pool.size(); ++i)
    for (std::size_t j = 0; j < pool.size(); ++j) {
      const simd::F64 va = LoadRot(pool, i, a);
      const simd::F64 vb = LoadRot(pool, j, b);
      SCOPED_TRACE("rot i=" + std::to_string(i) + " j=" +
                   std::to_string(j));
      simd::Add(va, vb).Store(r);
      for (int l = 0; l < simd::F64::kWidth; ++l)
        EXPECT_TRUE(ArithBits(r[l], a[l] + b[l])) << "Add lane " << l;
      simd::Sub(va, vb).Store(r);
      for (int l = 0; l < simd::F64::kWidth; ++l)
        EXPECT_TRUE(ArithBits(r[l], a[l] - b[l])) << "Sub lane " << l;
      simd::Mul(va, vb).Store(r);
      for (int l = 0; l < simd::F64::kWidth; ++l)
        EXPECT_TRUE(ArithBits(r[l], a[l] * b[l])) << "Mul lane " << l;
    }
}

TEST(SimdF64, CompareSelectMinMaxMatchStdSemantics) {
  const auto& pool = Specials();
  double a[simd::F64::kWidth], b[simd::F64::kWidth],
      r[simd::F64::kWidth];
  for (std::size_t i = 0; i < pool.size(); ++i)
    for (std::size_t j = 0; j < pool.size(); ++j) {
      const simd::F64 va = LoadRot(pool, i, a);
      const simd::F64 vb = LoadRot(pool, j, b);
      SCOPED_TRACE("rot i=" + std::to_string(i) + " j=" +
                   std::to_string(j));
      // Max/Min pin the std::max/std::min ternaries — including which
      // operand survives on NaN and on ±0 ties (both compare false).
      simd::Max(va, vb).Store(r);
      for (int l = 0; l < simd::F64::kWidth; ++l)
        EXPECT_TRUE(SameBits(r[l], a[l] < b[l] ? b[l] : a[l]))
            << "Max lane " << l;
      simd::Min(va, vb).Store(r);
      for (int l = 0; l < simd::F64::kWidth; ++l)
        EXPECT_TRUE(SameBits(r[l], b[l] < a[l] ? b[l] : a[l]))
            << "Min lane " << l;
      // Movemask compares: ordered < (false on NaN), unordered !=
      // (true on NaN) — the C++ operators exactly.
      const unsigned lt = simd::LtMask(va, vb);
      const unsigned neq = simd::NeqMask(va, vb);
      for (int l = 0; l < simd::F64::kWidth; ++l) {
        EXPECT_EQ((lt >> l) & 1u, a[l] < b[l] ? 1u : 0u)
            << "LtMask lane " << l;
        EXPECT_EQ((neq >> l) & 1u, a[l] != b[l] ? 1u : 0u)
            << "NeqMask lane " << l;
      }
      // Select routes lane l from its mask lane alone.
      simd::Select(simd::Lt(va, vb), va, vb).Store(r);
      for (int l = 0; l < simd::F64::kWidth; ++l)
        EXPECT_TRUE(SameBits(r[l], a[l] < b[l] ? a[l] : b[l]))
            << "Select lane " << l;
    }
}

TEST(SimdF32, PrimitivesMatchScalarExpressionOnSpecials) {
  std::vector<float> pool = {0.0f,
                             -0.0f,
                             std::numeric_limits<float>::infinity(),
                             -std::numeric_limits<float>::infinity(),
                             std::numeric_limits<float>::quiet_NaN(),
                             std::numeric_limits<float>::denorm_min(),
                             std::numeric_limits<float>::max(),
                             -std::numeric_limits<float>::max(),
                             1.5f,
                             -2.25f,
                             3.7f};
  float a[simd::F32::kWidth], b[simd::F32::kWidth], r[simd::F32::kWidth];
  for (std::size_t i = 0; i < pool.size(); ++i)
    for (std::size_t j = 0; j < pool.size(); ++j) {
      for (int l = 0; l < simd::F32::kWidth; ++l) {
        a[l] = pool[(i + static_cast<std::size_t>(l)) % pool.size()];
        b[l] = pool[(j + static_cast<std::size_t>(l)) % pool.size()];
      }
      const simd::F32 va = simd::F32::Load(a);
      const simd::F32 vb = simd::F32::Load(b);
      SCOPED_TRACE("rot i=" + std::to_string(i) + " j=" +
                   std::to_string(j));
      simd::Add(va, vb).Store(r);
      for (int l = 0; l < simd::F32::kWidth; ++l)
        EXPECT_TRUE(ArithBitsF(r[l], a[l] + b[l])) << "Add lane " << l;
      simd::Sub(va, vb).Store(r);
      for (int l = 0; l < simd::F32::kWidth; ++l)
        EXPECT_TRUE(ArithBitsF(r[l], a[l] - b[l])) << "Sub lane " << l;
      simd::Mul(va, vb).Store(r);
      for (int l = 0; l < simd::F32::kWidth; ++l)
        EXPECT_TRUE(ArithBitsF(r[l], a[l] * b[l])) << "Mul lane " << l;
      simd::Max(va, vb).Store(r);
      for (int l = 0; l < simd::F32::kWidth; ++l)
        EXPECT_TRUE(SameBitsF(r[l], a[l] < b[l] ? b[l] : a[l]))
            << "Max lane " << l;
      simd::Min(va, vb).Store(r);
      for (int l = 0; l < simd::F32::kWidth; ++l)
        EXPECT_TRUE(SameBitsF(r[l], b[l] < a[l] ? b[l] : a[l]))
            << "Min lane " << l;
      const unsigned lt = simd::LtMask(va, vb);
      for (int l = 0; l < simd::F32::kWidth; ++l)
        EXPECT_EQ((lt >> l) & 1u, a[l] < b[l] ? 1u : 0u)
            << "LtMask lane " << l;
    }
}

TEST(SimdU64, IntegerOpsExactOnBoundaryPatterns) {
  const std::vector<std::uint64_t> pool = {
      0ull,
      1ull,
      ~0ull,
      1ull << 63,
      (1ull << 63) - 1,
      0x5555555555555555ull,
      0xaaaaaaaaaaaaaaaaull,
      0x00000000ffffffffull,
      0xdeadbeefcafebabeull,
      42ull};
  std::uint64_t a[simd::U64::kWidth], b[simd::U64::kWidth],
      r[simd::U64::kWidth];
  for (std::size_t i = 0; i < pool.size(); ++i)
    for (std::size_t j = 0; j < pool.size(); ++j) {
      for (int l = 0; l < simd::U64::kWidth; ++l) {
        a[l] = pool[(i + static_cast<std::size_t>(l)) % pool.size()];
        b[l] = pool[(j + static_cast<std::size_t>(l)) % pool.size()];
      }
      const simd::U64 va = simd::U64::Load(a);
      const simd::U64 vb = simd::U64::Load(b);
      SCOPED_TRACE("rot i=" + std::to_string(i) + " j=" +
                   std::to_string(j));
      simd::Add(va, vb).Store(r);
      for (int l = 0; l < simd::U64::kWidth; ++l)
        EXPECT_EQ(r[l], a[l] + b[l]) << "Add lane " << l;  // mod 2^64
      simd::SubU(va, vb).Store(r);
      for (int l = 0; l < simd::U64::kWidth; ++l)
        EXPECT_EQ(r[l], a[l] - b[l]) << "SubU lane " << l;
      simd::And(va, vb).Store(r);
      for (int l = 0; l < simd::U64::kWidth; ++l)
        EXPECT_EQ(r[l], a[l] & b[l]) << "And lane " << l;
      simd::Or(va, vb).Store(r);
      for (int l = 0; l < simd::U64::kWidth; ++l)
        EXPECT_EQ(r[l], a[l] | b[l]) << "Or lane " << l;
      simd::Xor(va, vb).Store(r);
      for (int l = 0; l < simd::U64::kWidth; ++l)
        EXPECT_EQ(r[l], a[l] ^ b[l]) << "Xor lane " << l;
      bool any = false;
      for (int l = 0; l < simd::U64::kWidth; ++l) any = any || a[l] != 0;
      EXPECT_EQ(simd::AnyNonZero(va), any);
    }
}

TEST(SimdU64, ShiftsAndIotaMatchScalar) {
  const std::vector<std::uint64_t> pool = {
      ~0ull, 1ull, 0x8000000000000001ull, 0x123456789abcdef0ull};
  std::uint64_t a[simd::U64::kWidth], k[simd::U64::kWidth],
      r[simd::U64::kWidth];
  // Immediate left shift: every count 0..63 over the whole pool.
  for (std::size_t i = 0; i < pool.size(); ++i)
    for (int s = 0; s < 64; ++s) {
      for (int l = 0; l < simd::U64::kWidth; ++l)
        a[l] = pool[(i + static_cast<std::size_t>(l)) % pool.size()];
      simd::Shl(simd::U64::Load(a), s).Store(r);
      for (int l = 0; l < simd::U64::kWidth; ++l)
        EXPECT_EQ(r[l], a[l] << s)
            << "Shl lane " << l << " count " << s;
    }
  // Per-lane variable right shift: distinct counts per lane, all
  // residues mod 64 covered.
  for (std::size_t i = 0; i < pool.size(); ++i)
    for (int base = 0; base < 64; ++base) {
      for (int l = 0; l < simd::U64::kWidth; ++l) {
        a[l] = pool[(i + static_cast<std::size_t>(l)) % pool.size()];
        k[l] = static_cast<std::uint64_t>((base + 17 * l) % 64);
      }
      simd::ShrVar(simd::U64::Load(a), simd::U64::Load(k)).Store(r);
      for (int l = 0; l < simd::U64::kWidth; ++l)
        EXPECT_EQ(r[l], a[l] >> k[l])
            << "ShrVar lane " << l << " count " << k[l];
    }
  simd::U64::Iota(7).Store(r);
  for (int l = 0; l < simd::U64::kWidth; ++l)
    EXPECT_EQ(r[l], 7u + static_cast<std::uint64_t>(l));
}

TEST(SimdU64, AccumulateLtCountsOrderedCompares) {
  const auto& pool = Specials();
  double a[simd::F64::kWidth], b[simd::F64::kWidth];
  std::uint64_t acc[simd::U64::kWidth], r[simd::U64::kWidth];
  for (std::size_t i = 0; i < pool.size(); ++i)
    for (std::size_t j = 0; j < pool.size(); ++j) {
      const simd::F64 va = LoadRot(pool, i, a);
      const simd::F64 vb = LoadRot(pool, j, b);
      for (int l = 0; l < simd::U64::kWidth; ++l)
        acc[l] = 1000u * static_cast<std::uint64_t>(l) + i + j;
      simd::AccumulateLt(simd::U64::Load(acc), va, vb).Store(r);
      for (int l = 0; l < simd::U64::kWidth; ++l)
        EXPECT_EQ(r[l], acc[l] + (a[l] < b[l] ? 1u : 0u))
            << "lane " << l << " i=" << i << " j=" << j;
    }
}

// ====================================================================
// Lane kernels: reference loops + tail boundaries + canary guards.
// ====================================================================

constexpr std::size_t kW = static_cast<std::size_t>(simd::F64::kWidth);
constexpr double kCanary = -9.8765e123;

/// Deterministic pseudo-random row mixing normals with the arrival
/// sweep's sentinel (-inf).
std::vector<double> ArrivalRow(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  std::vector<double> row(n);
  for (double& x : row)
    x = (rng() % 7 == 0) ? kNegInf : dist(rng);
  return row;
}

/// Checks row[n..] still holds the canary (kernel never over-writes).
void ExpectCanaryIntact(const std::vector<double>& buf, std::size_t n) {
  for (std::size_t i = n; i < buf.size(); ++i)
    EXPECT_EQ(buf[i], kCanary) << "overwrite at lane " << i;
}

TEST(LaneKernels, LaunchMaxPropagateMatchReferenceAtEveryTail) {
  for (std::size_t n = 1; n <= 2 * kW + 3; ++n) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const std::vector<double> m = ArrivalRow(n, 100 + n);
    const std::vector<double> in = ArrivalRow(n, 200 + n);
    const double base = 0.37, wire = 0.05, bcast = 1.25;

    std::vector<double> out(n + kW, kCanary);
    sta::lanes::Launch(out.data(), m.data(), base, wire, n);
    for (std::size_t l = 0; l < n; ++l)
      EXPECT_TRUE(SameBits(out[l], base * m[l] + wire)) << l;
    ExpectCanaryIntact(out, n);

    std::vector<double> acc = ArrivalRow(n, 300 + n);
    std::vector<double> ref = acc;
    acc.resize(n + kW, kCanary);
    sta::lanes::MaxInPlace(acc.data(), in.data(), n);
    for (std::size_t l = 0; l < n; ++l)
      EXPECT_TRUE(SameBits(acc[l], std::max(ref[l], in[l]))) << l;
    ExpectCanaryIntact(acc, n);

    std::vector<double> acc2 = ref;
    acc2.resize(n + kW, kCanary);
    sta::lanes::MaxBroadcast(acc2.data(), bcast, n);
    for (std::size_t l = 0; l < n; ++l)
      EXPECT_TRUE(SameBits(acc2[l], std::max(ref[l], bcast))) << l;
    ExpectCanaryIntact(acc2, n);

    std::vector<double> prop(n + kW, kCanary);
    sta::lanes::Propagate(prop.data(), in.data(), m.data(), base, wire,
                          n);
    for (std::size_t l = 0; l < n; ++l)
      EXPECT_TRUE(SameBits(prop[l], in[l] + base * m[l] + wire)) << l;
    ExpectCanaryIntact(prop, n);
  }
}

TEST(LaneKernels, PropagateNeqMaskMatchesReferenceAtEveryTail) {
  for (std::size_t n = 1; n <= 2 * kW + 3; ++n) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const std::vector<double> m = ArrivalRow(n, 400 + n);
    const std::vector<double> in = ArrivalRow(n, 500 + n);
    const double base = 0.21, wire = 0.04;
    // cmp equals the recomputed value in some lanes (convergence) and
    // not in others; build it from the reference expression.
    std::vector<double> cmp_src(n);
    for (std::size_t l = 0; l < n; ++l)
      cmp_src[l] = in[l] + base * m[l] + wire;
    const double cmp = cmp_src[n / 2];  // converges where values tie

    std::vector<double> out(n + kW, kCanary);
    const std::uint64_t dm = sta::lanes::PropagateNeq(
        out.data(), in.data(), m.data(), base, wire, cmp, n);
    std::uint64_t want = 0;
    for (std::size_t l = 0; l < n; ++l) {
      const double v = in[l] + base * m[l] + wire;
      EXPECT_TRUE(SameBits(out[l], v)) << l;
      if (v != cmp) want |= 1ull << l;
    }
    EXPECT_EQ(dm, want);
    ExpectCanaryIntact(out, n);
  }
}

TEST(LaneKernels, PropagateCellMatchesReferenceForAllArities) {
  for (std::size_t n = 1; n <= 2 * kW + 3; ++n)
    for (int nin = 1; nin <= 3; ++nin)
      for (int nout = 1; nout <= 2; ++nout) {
        SCOPED_TRACE("n=" + std::to_string(n) + " nin=" +
                     std::to_string(nin) + " nout=" +
                     std::to_string(nout));
        const std::vector<double> m = ArrivalRow(n, 600 + n);
        std::vector<std::vector<double>> ins;
        const double* in_rows[3] = {};
        for (int k = 0; k < nin; ++k) {
          ins.push_back(ArrivalRow(
              n, 700 + n + static_cast<std::size_t>(k) * 31));
          in_rows[k] = ins.back().data();
        }
        std::vector<std::vector<double>> outs_buf(
            static_cast<std::size_t>(nout),
            std::vector<double>(n + kW, kCanary));
        sta::lanes::OutArc arcs[2];
        for (int o = 0; o < nout; ++o)
          arcs[o] = {outs_buf[static_cast<std::size_t>(o)].data(),
                     0.3 + 0.1 * o, 0.02 + 0.01 * o};
        sta::lanes::PropagateCell(in_rows, nin, arcs, nout, m.data(),
                                  kNegInf, n);
        for (std::size_t l = 0; l < n; ++l) {
          double a = kNegInf;
          for (int k = 0; k < nin; ++k) a = std::max(a, in_rows[k][l]);
          for (int o = 0; o < nout; ++o)
            EXPECT_TRUE(
                SameBits(outs_buf[static_cast<std::size_t>(o)][l],
                         a + arcs[o].base * m[l] + arcs[o].wire))
                << "lane " << l << " out " << o;
        }
        for (int o = 0; o < nout; ++o)
          ExpectCanaryIntact(outs_buf[static_cast<std::size_t>(o)], n);
      }
}

TEST(LaneKernels, EndpointFoldsMatchReferenceAtEveryTail) {
  for (std::size_t n = 1; n <= 2 * kW + 3; ++n) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const std::vector<double> m = ArrivalRow(n, 800 + n);
    const std::vector<double> arr = ArrivalRow(n, 900 + n);
    const double clock = 0.55, setup = 0.06, barr = 0.31;

    std::vector<double> wns(n, 0.2), wns_ref(wns.begin(), wns.end());
    std::vector<std::uint64_t> viol(n, 3), viol_ref(viol.begin(),
                                                    viol.end());
    wns.resize(n + kW, kCanary);
    viol.resize(n + kW, 77);
    sta::lanes::EndpointFold(wns.data(), viol.data(), m.data(),
                             arr.data(), clock, setup, n);
    for (std::size_t l = 0; l < n; ++l) {
      const double slack = clock - setup * m[l] - arr[l];
      EXPECT_TRUE(SameBits(wns[l], std::min(wns_ref[l], slack))) << l;
      EXPECT_EQ(viol[l], viol_ref[l] + (slack < 0.0 ? 1u : 0u)) << l;
    }
    ExpectCanaryIntact(wns, n);
    for (std::size_t i = n; i < viol.size(); ++i)
      EXPECT_EQ(viol[i], 77u) << i;

    std::vector<double> wns2(n, 0.2);
    std::vector<std::uint64_t> viol2(n, 3);
    wns2.resize(n + kW, kCanary);
    viol2.resize(n + kW, 77);
    sta::lanes::EndpointFoldBcast(wns2.data(), viol2.data(), m.data(),
                                  barr, clock, setup, n);
    for (std::size_t l = 0; l < n; ++l) {
      const double slack = clock - setup * m[l] - barr;
      EXPECT_TRUE(SameBits(wns2[l], std::min(0.2, slack))) << l;
      EXPECT_EQ(viol2[l], 3u + (slack < 0.0 ? 1u : 0u)) << l;
    }
    ExpectCanaryIntact(wns2, n);
  }
}

// ====================================================================
// The full sweep on top of the kernels: batch lanes == scalar Analyze
// across all four generator families x operator widths, and the
// arrival lanes stay NaN/∞-free on every reached net.
// ====================================================================

struct Generator {
  const char* name;
  gen::Operator (*build)(int);
};
const Generator kGenerators[] = {
    {"booth", &gen::BuildBoothOperator},
    {"butterfly", &gen::BuildButterflyOperator},
    {"fir_mac", &gen::BuildFirMacOperator},
    {"array_mult", &gen::BuildArrayMultOperator},
};

TEST(SimdSta, BatchBitIdenticalToScalarAcrossOperatorsAndWidths) {
  std::mt19937 rng(20260809);
  for (const Generator& g : kGenerators)
    for (const int w : {8, 16, 32}) {
      SCOPED_TRACE(std::string(g.name) + " width " + std::to_string(w));
      core::FlowOptions fopt;
      fopt.grid = {2, 2};
      fopt.clock_ns = 0.55;
      const core::ImplementedDesign d =
          core::RunImplementationFlow(g.build(w), Lib(), fopt);
      sta::TimingAnalyzer an(d.op.nl, Lib(), d.loads);
      const std::uint32_t nmasks = 1u << d.num_domains();
      const netlist::CaseAnalysis ca(d.op.nl,
                                     core::ForcedZeros(d.op, w / 2));
      // Batch widths straddling the vector width, incl. a ragged tail.
      for (const std::size_t W :
           {std::size_t{1}, kW + 1, std::size_t{16}}) {
        std::vector<tech::DomainMask> lanes(W);
        for (tech::DomainMask& mk : lanes) mk = rng() % nmasks;
        const double vdd = 0.7 + 0.05 * static_cast<double>(W % 7);
        const auto batch =
            an.AnalyzeBatch(vdd, d.clock_ns, lanes, d.domain_of(), &ca);
        ASSERT_EQ(batch.size(), W);

        // NaN/∞-free invariant: every reached net's whole lane row is
        // finite (unreached rows are undefined by contract).
        const std::span<const double> arr = an.LastBatchArrivals();
        const std::span<const std::uint8_t> reached =
            an.LastBatchReached();
        ASSERT_EQ(reached.size(), d.op.nl.num_nets());
        for (std::size_t n = 0; n < reached.size(); ++n) {
          if (!reached[n]) continue;
          for (std::size_t l = 0; l < W; ++l)
            ASSERT_TRUE(std::isfinite(arr[n * W + l]))
                << "net " << n << " lane " << l << " = "
                << arr[n * W + l];
        }

        for (std::size_t l = 0; l < W; ++l) {
          SCOPED_TRACE("lane " + std::to_string(l) + " mask " +
                       std::to_string(lanes[l]));
          const sta::TimingReport scalar = an.Analyze(
              vdd, d.clock_ns, core::BiasVectorFor(d, lanes[l]), &ca);
          EXPECT_EQ(batch[l].wns_ns, scalar.wns_ns);
          EXPECT_EQ(batch[l].num_violations, scalar.num_violations);
          EXPECT_EQ(batch[l].num_active_endpoints,
                    scalar.num_active_endpoints);
          EXPECT_EQ(batch[l].num_disabled_endpoints,
                    scalar.num_disabled_endpoints);
        }
      }
    }
}

TEST(SimdSta, BackendReportsConsistentWidths) {
  // The provenance string must be one of the known backends, and the
  // compile-time widths must match what the bench provenance records.
  const std::string b = simd::kBackendName;
  EXPECT_TRUE(b == "avx2" || b == "sse2" || b == "neon" || b == "scalar")
      << b;
  EXPECT_GE(simd::F64::kWidth, 2);
  EXPECT_EQ(simd::U64::kWidth, simd::F64::kWidth);
#if defined(ADQ_SIMD_DISABLED)
  EXPECT_EQ(b, "scalar");
#endif
}

}  // namespace
}  // namespace adq
