file(REMOVE_RECURSE
  "CMakeFiles/test_case_analysis.dir/test_case_analysis.cpp.o"
  "CMakeFiles/test_case_analysis.dir/test_case_analysis.cpp.o.d"
  "test_case_analysis"
  "test_case_analysis.pdb"
  "test_case_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_case_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
