# Empty dependencies file for test_parallel_explore.
# This may be replaced when dependencies are built.
