
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/test_properties.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/test_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/adq_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/adq_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/adq_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/adq_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/adq_place.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/adq_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/adq_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
