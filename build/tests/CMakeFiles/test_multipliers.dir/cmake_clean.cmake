file(REMOVE_RECURSE
  "CMakeFiles/test_multipliers.dir/test_multipliers.cpp.o"
  "CMakeFiles/test_multipliers.dir/test_multipliers.cpp.o.d"
  "test_multipliers"
  "test_multipliers.pdb"
  "test_multipliers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multipliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
