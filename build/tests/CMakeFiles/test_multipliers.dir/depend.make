# Empty dependencies file for test_multipliers.
# This may be replaced when dependencies are built.
