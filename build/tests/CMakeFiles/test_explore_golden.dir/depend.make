# Empty dependencies file for test_explore_golden.
# This may be replaced when dependencies are built.
