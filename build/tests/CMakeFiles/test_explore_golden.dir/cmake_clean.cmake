file(REMOVE_RECURSE
  "CMakeFiles/test_explore_golden.dir/test_explore_golden.cpp.o"
  "CMakeFiles/test_explore_golden.dir/test_explore_golden.cpp.o.d"
  "test_explore_golden"
  "test_explore_golden.pdb"
  "test_explore_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_explore_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
