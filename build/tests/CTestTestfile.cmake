# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_tech[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_case_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_adders[1]_include.cmake")
include("/root/repo/build/tests/test_multipliers[1]_include.cmake")
include("/root/repo/build/tests/test_operators[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_place[1]_include.cmake")
include("/root/repo/build/tests/test_sta[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_explore[1]_include.cmake")
include("/root/repo/build/tests/test_explore_golden[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_explore[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_crosscheck[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
