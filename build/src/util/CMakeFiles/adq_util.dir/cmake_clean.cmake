file(REMOVE_RECURSE
  "CMakeFiles/adq_util.dir/histogram.cpp.o"
  "CMakeFiles/adq_util.dir/histogram.cpp.o.d"
  "CMakeFiles/adq_util.dir/table.cpp.o"
  "CMakeFiles/adq_util.dir/table.cpp.o.d"
  "CMakeFiles/adq_util.dir/thread_pool.cpp.o"
  "CMakeFiles/adq_util.dir/thread_pool.cpp.o.d"
  "libadq_util.a"
  "libadq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
