file(REMOVE_RECURSE
  "libadq_util.a"
)
