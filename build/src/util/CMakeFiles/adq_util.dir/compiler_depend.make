# Empty compiler generated dependencies file for adq_util.
# This may be replaced when dependencies are built.
