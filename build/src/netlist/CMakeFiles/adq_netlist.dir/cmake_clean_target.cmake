file(REMOVE_RECURSE
  "libadq_netlist.a"
)
