# Empty compiler generated dependencies file for adq_netlist.
# This may be replaced when dependencies are built.
