file(REMOVE_RECURSE
  "CMakeFiles/adq_netlist.dir/case_analysis.cpp.o"
  "CMakeFiles/adq_netlist.dir/case_analysis.cpp.o.d"
  "CMakeFiles/adq_netlist.dir/netlist.cpp.o"
  "CMakeFiles/adq_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/adq_netlist.dir/stats.cpp.o"
  "CMakeFiles/adq_netlist.dir/stats.cpp.o.d"
  "CMakeFiles/adq_netlist.dir/topo.cpp.o"
  "CMakeFiles/adq_netlist.dir/topo.cpp.o.d"
  "CMakeFiles/adq_netlist.dir/verilog.cpp.o"
  "CMakeFiles/adq_netlist.dir/verilog.cpp.o.d"
  "libadq_netlist.a"
  "libadq_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adq_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
