# Empty compiler generated dependencies file for adq_sta.
# This may be replaced when dependencies are built.
