file(REMOVE_RECURSE
  "libadq_sta.a"
)
