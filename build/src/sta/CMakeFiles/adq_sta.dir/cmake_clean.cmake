file(REMOVE_RECURSE
  "CMakeFiles/adq_sta.dir/slack_histogram.cpp.o"
  "CMakeFiles/adq_sta.dir/slack_histogram.cpp.o.d"
  "CMakeFiles/adq_sta.dir/sta.cpp.o"
  "CMakeFiles/adq_sta.dir/sta.cpp.o.d"
  "libadq_sta.a"
  "libadq_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adq_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
