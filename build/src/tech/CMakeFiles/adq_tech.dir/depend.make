# Empty dependencies file for adq_tech.
# This may be replaced when dependencies are built.
