file(REMOVE_RECURSE
  "libadq_tech.a"
)
