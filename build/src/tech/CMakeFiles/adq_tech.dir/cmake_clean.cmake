file(REMOVE_RECURSE
  "CMakeFiles/adq_tech.dir/cell_library.cpp.o"
  "CMakeFiles/adq_tech.dir/cell_library.cpp.o.d"
  "CMakeFiles/adq_tech.dir/liberty_writer.cpp.o"
  "CMakeFiles/adq_tech.dir/liberty_writer.cpp.o.d"
  "libadq_tech.a"
  "libadq_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adq_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
