# Empty compiler generated dependencies file for adq_sim.
# This may be replaced when dependencies are built.
