file(REMOVE_RECURSE
  "libadq_sim.a"
)
