file(REMOVE_RECURSE
  "CMakeFiles/adq_sim.dir/activity.cpp.o"
  "CMakeFiles/adq_sim.dir/activity.cpp.o.d"
  "CMakeFiles/adq_sim.dir/logic_sim.cpp.o"
  "CMakeFiles/adq_sim.dir/logic_sim.cpp.o.d"
  "CMakeFiles/adq_sim.dir/stimulus.cpp.o"
  "CMakeFiles/adq_sim.dir/stimulus.cpp.o.d"
  "CMakeFiles/adq_sim.dir/vcd.cpp.o"
  "CMakeFiles/adq_sim.dir/vcd.cpp.o.d"
  "libadq_sim.a"
  "libadq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
