
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/activity.cpp" "src/sim/CMakeFiles/adq_sim.dir/activity.cpp.o" "gcc" "src/sim/CMakeFiles/adq_sim.dir/activity.cpp.o.d"
  "/root/repo/src/sim/logic_sim.cpp" "src/sim/CMakeFiles/adq_sim.dir/logic_sim.cpp.o" "gcc" "src/sim/CMakeFiles/adq_sim.dir/logic_sim.cpp.o.d"
  "/root/repo/src/sim/stimulus.cpp" "src/sim/CMakeFiles/adq_sim.dir/stimulus.cpp.o" "gcc" "src/sim/CMakeFiles/adq_sim.dir/stimulus.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/sim/CMakeFiles/adq_sim.dir/vcd.cpp.o" "gcc" "src/sim/CMakeFiles/adq_sim.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/adq_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/adq_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/adq_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
