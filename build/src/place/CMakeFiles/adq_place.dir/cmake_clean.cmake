file(REMOVE_RECURSE
  "CMakeFiles/adq_place.dir/def_writer.cpp.o"
  "CMakeFiles/adq_place.dir/def_writer.cpp.o.d"
  "CMakeFiles/adq_place.dir/grid_partition.cpp.o"
  "CMakeFiles/adq_place.dir/grid_partition.cpp.o.d"
  "CMakeFiles/adq_place.dir/placer.cpp.o"
  "CMakeFiles/adq_place.dir/placer.cpp.o.d"
  "CMakeFiles/adq_place.dir/wirelength.cpp.o"
  "CMakeFiles/adq_place.dir/wirelength.cpp.o.d"
  "libadq_place.a"
  "libadq_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adq_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
