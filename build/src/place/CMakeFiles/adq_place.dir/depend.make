# Empty dependencies file for adq_place.
# This may be replaced when dependencies are built.
