
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/place/def_writer.cpp" "src/place/CMakeFiles/adq_place.dir/def_writer.cpp.o" "gcc" "src/place/CMakeFiles/adq_place.dir/def_writer.cpp.o.d"
  "/root/repo/src/place/grid_partition.cpp" "src/place/CMakeFiles/adq_place.dir/grid_partition.cpp.o" "gcc" "src/place/CMakeFiles/adq_place.dir/grid_partition.cpp.o.d"
  "/root/repo/src/place/placer.cpp" "src/place/CMakeFiles/adq_place.dir/placer.cpp.o" "gcc" "src/place/CMakeFiles/adq_place.dir/placer.cpp.o.d"
  "/root/repo/src/place/wirelength.cpp" "src/place/CMakeFiles/adq_place.dir/wirelength.cpp.o" "gcc" "src/place/CMakeFiles/adq_place.dir/wirelength.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/adq_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/adq_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
