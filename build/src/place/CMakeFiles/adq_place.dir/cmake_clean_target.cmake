file(REMOVE_RECURSE
  "libadq_place.a"
)
