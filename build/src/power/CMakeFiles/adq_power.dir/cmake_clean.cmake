file(REMOVE_RECURSE
  "CMakeFiles/adq_power.dir/power.cpp.o"
  "CMakeFiles/adq_power.dir/power.cpp.o.d"
  "libadq_power.a"
  "libadq_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adq_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
