# Empty dependencies file for adq_power.
# This may be replaced when dependencies are built.
