file(REMOVE_RECURSE
  "libadq_power.a"
)
