file(REMOVE_RECURSE
  "libadq_gen.a"
)
