file(REMOVE_RECURSE
  "CMakeFiles/adq_gen.dir/adders.cpp.o"
  "CMakeFiles/adq_gen.dir/adders.cpp.o.d"
  "CMakeFiles/adq_gen.dir/array_mult.cpp.o"
  "CMakeFiles/adq_gen.dir/array_mult.cpp.o.d"
  "CMakeFiles/adq_gen.dir/booth.cpp.o"
  "CMakeFiles/adq_gen.dir/booth.cpp.o.d"
  "CMakeFiles/adq_gen.dir/operator.cpp.o"
  "CMakeFiles/adq_gen.dir/operator.cpp.o.d"
  "CMakeFiles/adq_gen.dir/wallace.cpp.o"
  "CMakeFiles/adq_gen.dir/wallace.cpp.o.d"
  "libadq_gen.a"
  "libadq_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adq_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
