# Empty dependencies file for adq_gen.
# This may be replaced when dependencies are built.
