
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/adders.cpp" "src/gen/CMakeFiles/adq_gen.dir/adders.cpp.o" "gcc" "src/gen/CMakeFiles/adq_gen.dir/adders.cpp.o.d"
  "/root/repo/src/gen/array_mult.cpp" "src/gen/CMakeFiles/adq_gen.dir/array_mult.cpp.o" "gcc" "src/gen/CMakeFiles/adq_gen.dir/array_mult.cpp.o.d"
  "/root/repo/src/gen/booth.cpp" "src/gen/CMakeFiles/adq_gen.dir/booth.cpp.o" "gcc" "src/gen/CMakeFiles/adq_gen.dir/booth.cpp.o.d"
  "/root/repo/src/gen/operator.cpp" "src/gen/CMakeFiles/adq_gen.dir/operator.cpp.o" "gcc" "src/gen/CMakeFiles/adq_gen.dir/operator.cpp.o.d"
  "/root/repo/src/gen/wallace.cpp" "src/gen/CMakeFiles/adq_gen.dir/wallace.cpp.o" "gcc" "src/gen/CMakeFiles/adq_gen.dir/wallace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/adq_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/adq_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
