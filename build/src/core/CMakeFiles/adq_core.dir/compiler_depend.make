# Empty compiler generated dependencies file for adq_core.
# This may be replaced when dependencies are built.
