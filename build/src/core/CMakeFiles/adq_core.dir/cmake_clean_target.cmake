file(REMOVE_RECURSE
  "libadq_core.a"
)
