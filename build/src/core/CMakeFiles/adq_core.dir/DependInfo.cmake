
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accuracy.cpp" "src/core/CMakeFiles/adq_core.dir/accuracy.cpp.o" "gcc" "src/core/CMakeFiles/adq_core.dir/accuracy.cpp.o.d"
  "/root/repo/src/core/band_optimizer.cpp" "src/core/CMakeFiles/adq_core.dir/band_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/adq_core.dir/band_optimizer.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/adq_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/adq_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/dvas.cpp" "src/core/CMakeFiles/adq_core.dir/dvas.cpp.o" "gcc" "src/core/CMakeFiles/adq_core.dir/dvas.cpp.o.d"
  "/root/repo/src/core/error_metrics.cpp" "src/core/CMakeFiles/adq_core.dir/error_metrics.cpp.o" "gcc" "src/core/CMakeFiles/adq_core.dir/error_metrics.cpp.o.d"
  "/root/repo/src/core/explore.cpp" "src/core/CMakeFiles/adq_core.dir/explore.cpp.o" "gcc" "src/core/CMakeFiles/adq_core.dir/explore.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "src/core/CMakeFiles/adq_core.dir/flow.cpp.o" "gcc" "src/core/CMakeFiles/adq_core.dir/flow.cpp.o.d"
  "/root/repo/src/core/pareto.cpp" "src/core/CMakeFiles/adq_core.dir/pareto.cpp.o" "gcc" "src/core/CMakeFiles/adq_core.dir/pareto.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/adq_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/adq_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/variation.cpp" "src/core/CMakeFiles/adq_core.dir/variation.cpp.o" "gcc" "src/core/CMakeFiles/adq_core.dir/variation.cpp.o.d"
  "/root/repo/src/core/vdd_islands.cpp" "src/core/CMakeFiles/adq_core.dir/vdd_islands.cpp.o" "gcc" "src/core/CMakeFiles/adq_core.dir/vdd_islands.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/adq_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/adq_place.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/adq_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/adq_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/adq_power.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/adq_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/adq_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
