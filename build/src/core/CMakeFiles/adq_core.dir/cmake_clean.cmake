file(REMOVE_RECURSE
  "CMakeFiles/adq_core.dir/accuracy.cpp.o"
  "CMakeFiles/adq_core.dir/accuracy.cpp.o.d"
  "CMakeFiles/adq_core.dir/band_optimizer.cpp.o"
  "CMakeFiles/adq_core.dir/band_optimizer.cpp.o.d"
  "CMakeFiles/adq_core.dir/controller.cpp.o"
  "CMakeFiles/adq_core.dir/controller.cpp.o.d"
  "CMakeFiles/adq_core.dir/dvas.cpp.o"
  "CMakeFiles/adq_core.dir/dvas.cpp.o.d"
  "CMakeFiles/adq_core.dir/error_metrics.cpp.o"
  "CMakeFiles/adq_core.dir/error_metrics.cpp.o.d"
  "CMakeFiles/adq_core.dir/explore.cpp.o"
  "CMakeFiles/adq_core.dir/explore.cpp.o.d"
  "CMakeFiles/adq_core.dir/flow.cpp.o"
  "CMakeFiles/adq_core.dir/flow.cpp.o.d"
  "CMakeFiles/adq_core.dir/pareto.cpp.o"
  "CMakeFiles/adq_core.dir/pareto.cpp.o.d"
  "CMakeFiles/adq_core.dir/schedule.cpp.o"
  "CMakeFiles/adq_core.dir/schedule.cpp.o.d"
  "CMakeFiles/adq_core.dir/variation.cpp.o"
  "CMakeFiles/adq_core.dir/variation.cpp.o.d"
  "CMakeFiles/adq_core.dir/vdd_islands.cpp.o"
  "CMakeFiles/adq_core.dir/vdd_islands.cpp.o.d"
  "libadq_core.a"
  "libadq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
