# Empty dependencies file for adq_opt.
# This may be replaced when dependencies are built.
