file(REMOVE_RECURSE
  "CMakeFiles/adq_opt.dir/buffering.cpp.o"
  "CMakeFiles/adq_opt.dir/buffering.cpp.o.d"
  "CMakeFiles/adq_opt.dir/sizing.cpp.o"
  "CMakeFiles/adq_opt.dir/sizing.cpp.o.d"
  "libadq_opt.a"
  "libadq_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adq_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
