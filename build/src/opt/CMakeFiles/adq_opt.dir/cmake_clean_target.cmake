file(REMOVE_RECURSE
  "libadq_opt.a"
)
