# Empty compiler generated dependencies file for bench_parallel_explore.
# This may be replaced when dependencies are built.
