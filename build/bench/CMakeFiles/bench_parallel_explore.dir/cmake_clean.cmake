file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_explore.dir/bench_parallel_explore.cpp.o"
  "CMakeFiles/bench_parallel_explore.dir/bench_parallel_explore.cpp.o.d"
  "bench_parallel_explore"
  "bench_parallel_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
