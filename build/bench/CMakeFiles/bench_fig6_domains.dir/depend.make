# Empty dependencies file for bench_fig6_domains.
# This may be replaced when dependencies are built.
