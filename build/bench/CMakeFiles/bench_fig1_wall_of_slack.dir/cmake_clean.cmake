file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_wall_of_slack.dir/bench_fig1_wall_of_slack.cpp.o"
  "CMakeFiles/bench_fig1_wall_of_slack.dir/bench_fig1_wall_of_slack.cpp.o.d"
  "bench_fig1_wall_of_slack"
  "bench_fig1_wall_of_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_wall_of_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
