# Empty dependencies file for bench_fig1_wall_of_slack.
# This may be replaced when dependencies are built.
