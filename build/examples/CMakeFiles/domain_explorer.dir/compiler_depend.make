# Empty compiler generated dependencies file for domain_explorer.
# This may be replaced when dependencies are built.
