file(REMOVE_RECURSE
  "CMakeFiles/domain_explorer.dir/domain_explorer.cpp.o"
  "CMakeFiles/domain_explorer.dir/domain_explorer.cpp.o.d"
  "domain_explorer"
  "domain_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
