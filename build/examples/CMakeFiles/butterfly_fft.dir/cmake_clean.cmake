file(REMOVE_RECURSE
  "CMakeFiles/butterfly_fft.dir/butterfly_fft.cpp.o"
  "CMakeFiles/butterfly_fft.dir/butterfly_fft.cpp.o.d"
  "butterfly_fft"
  "butterfly_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/butterfly_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
