# Empty dependencies file for butterfly_fft.
# This may be replaced when dependencies are built.
