# Empty dependencies file for fir_audio.
# This may be replaced when dependencies are built.
