file(REMOVE_RECURSE
  "CMakeFiles/fir_audio.dir/fir_audio.cpp.o"
  "CMakeFiles/fir_audio.dir/fir_audio.cpp.o.d"
  "fir_audio"
  "fir_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
