#!/usr/bin/env python3
"""Blocking clang-tidy gate with a committed baseline.

Runs clang-tidy (profile: repo-root .clang-tidy) over every
translation unit under src/ and fails ONLY on diagnostics that are not
covered by the baseline file. The baseline grandfathers the tree that
predates the gate so enabling a new check never breaks unrelated PRs;
new files and files whose baseline entry was removed are fully
blocking.

Baseline format — one entry per line, `#` comments allowed:

    <repo-relative-file>:<check-pattern>

`check-pattern` is an fnmatch glob matched against the clang-tidy
check name (e.g. `bugprone-use-after-move`); `*` grandfathers every
check for that file. The ratchet: delete a file's line once it is
clean and the gate keeps it clean forever.

Usage:
    tools/clang_tidy_gate.py --build build [--baseline FILE]
    tools/clang_tidy_gate.py --build build --update-baseline

Exit status: 0 when every diagnostic is baselined, 1 when new
diagnostics are found (they are printed), 2 on environment errors
(clang-tidy missing, no compile database).
"""

import argparse
import fnmatch
import os
import re
import shutil
import subprocess
import sys

# `path:line:col: warning: message [check-name,...]`
DIAG_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+.*\[(?P<checks>[A-Za-z0-9.,_-]+)\]\s*$"
)


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def list_sources(root: str) -> list:
    out = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "src")):
        for name in sorted(filenames):
            if name.endswith(".cpp"):
                out.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(out)


def run_clang_tidy(root: str, build_dir: str, sources: list) -> str:
    """Returns the concatenated stdout of clang-tidy over all sources."""
    tidy = shutil.which("clang-tidy")
    if tidy is None:
        print("clang_tidy_gate: clang-tidy not found on PATH", file=sys.stderr)
        sys.exit(2)
    if not os.path.exists(os.path.join(root, build_dir, "compile_commands.json")):
        print(
            f"clang_tidy_gate: {build_dir}/compile_commands.json missing "
            "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)",
            file=sys.stderr,
        )
        sys.exit(2)
    # One invocation for the whole list: clang-tidy parallelises poorly
    # but keeps per-TU state small; the CI tree is ~60 TUs.
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet"] + sources,
        cwd=root,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    # Exit status is ignored here on purpose: WarningsAsErrors stays
    # empty in .clang-tidy and THIS script is the arbiter of failure.
    return proc.stdout


def parse_fingerprints(output: str, root: str) -> set:
    """Normalises diagnostics to `file:check` pairs (line numbers drift
    with unrelated edits and would make the baseline churn)."""
    fingerprints = set()
    for line in output.splitlines():
        m = DIAG_RE.match(line.strip())
        if not m:
            continue
        path = m.group("path")
        if os.path.isabs(path):
            path = os.path.relpath(path, root)
        path = path.replace(os.sep, "/")
        if not path.startswith("src/"):
            continue  # third-party / generated headers are not gated
        for check in m.group("checks").split(","):
            fingerprints.add(f"{path}:{check.strip()}")
    return fingerprints


def load_baseline(path: str) -> list:
    entries = []
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            file_part, _, check_part = line.rpartition(":")
            if file_part:
                entries.append((file_part, check_part))
    return entries


def baselined(fingerprint: str, baseline: list) -> bool:
    file_part, _, check = fingerprint.rpartition(":")
    for base_file, base_check in baseline:
        if base_file == file_part and fnmatch.fnmatchcase(check, base_check):
            return True
    return False


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", default="build", help="build dir with compile db")
    ap.add_argument(
        "--baseline",
        default=os.path.join("tools", "clang_tidy_baseline.txt"),
        help="baseline suppression file (repo-relative)",
    )
    ap.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current diagnostics and exit 0",
    )
    args = ap.parse_args()

    root = repo_root()
    sources = list_sources(root)
    if not sources:
        print("clang_tidy_gate: no sources under src/", file=sys.stderr)
        return 2

    output = run_clang_tidy(root, args.build, sources)
    fingerprints = parse_fingerprints(output, root)

    baseline_path = os.path.join(root, args.baseline)
    if args.update_baseline:
        with open(baseline_path, "w", encoding="utf-8") as fh:
            fh.write("# clang-tidy baseline (generated by clang_tidy_gate.py"
                     " --update-baseline).\n")
            fh.write("# One `file:check` pair per line; the gate fails only"
                     " on pairs absent here.\n")
            for fp in sorted(fingerprints):
                fh.write(fp + "\n")
        print(f"clang_tidy_gate: wrote {len(fingerprints)} entries to "
              f"{args.baseline}")
        return 0

    baseline = load_baseline(baseline_path)
    fresh = sorted(fp for fp in fingerprints if not baselined(fp, baseline))
    if fresh:
        print("clang_tidy_gate: NEW diagnostics not in the baseline:")
        for fp in fresh:
            print(f"  {fp}")
        print(
            f"\n{len(fresh)} new finding(s). Fix them, or if a finding is a "
            "deliberate idiom, add its `file:check` pair to "
            f"{args.baseline} with a justifying comment."
        )
        return 1
    print(
        f"clang_tidy_gate: clean ({len(fingerprints)} diagnostic(s), all "
        f"baselined; {len(baseline)} baseline entries)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
